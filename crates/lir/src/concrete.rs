//! Concrete reference VM for LIR.
//!
//! This is the "vanilla interpreter run" of the paper's workflow: generated
//! test cases are replayed here (outside the symbolic engine) to confirm
//! outcomes and measure line coverage. It is also the differential-testing
//! oracle for the symbolic executor.

use std::collections::HashMap;

use crate::ir::{
    trace_kind, FuncId, InputMap, Inst, Intrinsic, MemSize, Operand, Program, Reg, Term,
};
use chef_solver::eval_bin;

const PAGE_BITS: u64 = 12;
const PAGE_SIZE: usize = 1 << PAGE_BITS;

/// Sparse byte-addressable memory backed by pages. Unmapped bytes read zero.
#[derive(Default, Clone)]
pub struct ConcreteMem {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>>,
}

impl ConcreteMem {
    /// Empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.pages.get(&(addr >> PAGE_BITS)) {
            Some(p) => p[(addr & (PAGE_SIZE as u64 - 1)) as usize],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, v: u8) {
        let page = self
            .pages
            .entry(addr >> PAGE_BITS)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
        page[(addr & (PAGE_SIZE as u64 - 1)) as usize] = v;
    }

    /// Reads a little-endian u64.
    pub fn read_u64(&self, addr: u64) -> u64 {
        let mut v = 0u64;
        for i in 0..8 {
            v |= (self.read_u8(addr.wrapping_add(i)) as u64) << (8 * i);
        }
        v
    }

    /// Writes a little-endian u64.
    pub fn write_u64(&mut self, addr: u64, v: u64) {
        for i in 0..8 {
            self.write_u8(addr.wrapping_add(i), (v >> (8 * i)) as u8);
        }
    }

    /// Reads `len` bytes.
    pub fn read_bytes(&self, addr: u64, len: u64) -> Vec<u8> {
        (0..len)
            .map(|i| self.read_u8(addr.wrapping_add(i)))
            .collect()
    }

    /// Writes a byte slice.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u64), b);
        }
    }
}

/// Structured guest events observed during a run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GuestEvent {
    /// An exception reached the top level, with its class name.
    Exception(String),
    /// The guest entered a code object.
    EnterCode(u64),
    /// Custom marker `(a, b)`.
    Marker(u64, u64),
}

/// How a concrete run ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConcreteStatus {
    /// `halt code` executed.
    Halted(u64),
    /// `end_symbolic(status)` executed.
    EndedSymbolic(u64),
    /// `abort(code)` executed — models an interpreter crash.
    Aborted(u64),
    /// The step budget ran out (used as the paper's hang detector).
    OutOfFuel,
    /// The entry function returned without halting.
    Returned,
}

/// Result of a concrete run.
#[derive(Clone, Debug)]
pub struct ConcreteOutcome {
    /// Exit status.
    pub status: ConcreteStatus,
    /// Instructions executed.
    pub steps: u64,
    /// `(hlpc, opcode)` pairs in execution order, from `log_pc`.
    pub hl_trace: Vec<(u64, u64)>,
    /// Structured guest events.
    pub events: Vec<GuestEvent>,
    /// Output of `debug_print` calls.
    pub debug_output: Vec<String>,
    /// Whether an `assume` was violated (the replay inputs disagree with the
    /// path the test case was generated for).
    pub assume_violated: bool,
}

struct Frame {
    func: FuncId,
    block: usize,
    ip: usize,
    regs: Vec<u64>,
    ret_dst: Option<Reg>,
}

/// Runs a program concretely.
///
/// `inputs` supplies the bytes written by `make_symbolic` (looked up by the
/// buffer name); missing names leave memory unchanged. `fuel` bounds the
/// number of executed instructions; exhaustion yields
/// [`ConcreteStatus::OutOfFuel`], which the Chef layer reports as a hang.
pub fn run_concrete(prog: &Program, inputs: &InputMap, fuel: u64) -> ConcreteOutcome {
    let mut mem = ConcreteMem::new();
    for seg in &prog.data {
        mem.write_bytes(seg.addr, &seg.bytes);
    }
    let entry = prog.func(prog.entry);
    let mut frames = vec![Frame {
        func: prog.entry,
        block: 0,
        ip: 0,
        regs: vec![0; entry.n_regs as usize],
        ret_dst: None,
    }];
    let mut out = ConcreteOutcome {
        status: ConcreteStatus::Returned,
        steps: 0,
        hl_trace: Vec::new(),
        events: Vec::new(),
        debug_output: Vec::new(),
        assume_violated: false,
    };

    'run: while let Some(frame) = frames.last_mut() {
        if out.steps >= fuel {
            out.status = ConcreteStatus::OutOfFuel;
            return out;
        }
        out.steps += 1;
        let func = prog.func(frame.func);
        let block = &func.blocks[frame.block];
        let eval = |regs: &[u64], op: &Operand| -> u64 {
            match op {
                Operand::Reg(r) => regs[r.0 as usize],
                Operand::Imm(v) => *v,
            }
        };
        if frame.ip < block.insts.len() {
            let inst = &block.insts[frame.ip];
            frame.ip += 1;
            match inst {
                Inst::Const { dst, value } => frame.regs[dst.0 as usize] = *value,
                Inst::Mov { dst, src } => frame.regs[dst.0 as usize] = eval(&frame.regs, src),
                Inst::Bin { op, dst, a, b } => {
                    let va = eval(&frame.regs, a);
                    let vb = eval(&frame.regs, b);
                    frame.regs[dst.0 as usize] = eval_bin(*op, 64, va, vb);
                }
                Inst::Not { dst, a } => frame.regs[dst.0 as usize] = !eval(&frame.regs, a),
                Inst::Select { dst, cond, t, f } => {
                    let c = eval(&frame.regs, cond);
                    frame.regs[dst.0 as usize] = if c != 0 {
                        eval(&frame.regs, t)
                    } else {
                        eval(&frame.regs, f)
                    };
                }
                Inst::Load { dst, addr, size } => {
                    let a = eval(&frame.regs, addr);
                    frame.regs[dst.0 as usize] = match size {
                        MemSize::U8 => mem.read_u8(a) as u64,
                        MemSize::U64 => mem.read_u64(a),
                    };
                }
                Inst::Store { addr, value, size } => {
                    let a = eval(&frame.regs, addr);
                    let v = eval(&frame.regs, value);
                    match size {
                        MemSize::U8 => mem.write_u8(a, v as u8),
                        MemSize::U64 => mem.write_u64(a, v),
                    }
                }
                Inst::Call {
                    dst,
                    func: callee,
                    args,
                } => {
                    let callee_fn = prog.func(*callee);
                    let mut regs = vec![0u64; callee_fn.n_regs as usize];
                    for (i, a) in args.iter().enumerate() {
                        regs[i] = eval(&frame.regs, a);
                    }
                    let ret_dst = *dst;
                    let callee = *callee;
                    frames.push(Frame {
                        func: callee,
                        block: 0,
                        ip: 0,
                        regs,
                        ret_dst,
                    });
                }
                Inst::Intrinsic { dst, intr, args } => {
                    let vals: Vec<u64> = args.iter().map(|a| eval(&frame.regs, a)).collect();
                    match intr {
                        Intrinsic::MakeSymbolic => {
                            let (addr, len, name_id) = (vals[0], vals[1], vals[2]);
                            let name = prog.name(name_id);
                            if let Some(bytes) = inputs.get(name) {
                                for i in 0..len {
                                    let b = bytes.get(i as usize).copied().unwrap_or(0);
                                    mem.write_u8(addr.wrapping_add(i), b);
                                }
                            }
                        }
                        Intrinsic::LogPc => out.hl_trace.push((vals[0], vals[1])),
                        Intrinsic::Assume => {
                            if vals[0] == 0 {
                                out.assume_violated = true;
                            }
                        }
                        Intrinsic::IsSymbolic => {
                            if let Some(d) = dst {
                                frame.regs[d.0 as usize] = 0;
                            }
                        }
                        Intrinsic::UpperBound | Intrinsic::Concretize => {
                            if let Some(d) = dst {
                                frame.regs[d.0 as usize] = vals[0];
                            }
                        }
                        Intrinsic::EndSymbolic => {
                            out.status = ConcreteStatus::EndedSymbolic(vals[0]);
                            break 'run;
                        }
                        Intrinsic::Abort => {
                            out.status = ConcreteStatus::Aborted(vals[0]);
                            break 'run;
                        }
                        Intrinsic::TraceEvent => {
                            let ev = match vals[0] {
                                trace_kind::EXCEPTION => {
                                    let bytes = mem.read_bytes(vals[1], vals[2]);
                                    GuestEvent::Exception(
                                        String::from_utf8_lossy(&bytes).into_owned(),
                                    )
                                }
                                trace_kind::ENTER_CODE => GuestEvent::EnterCode(vals[1]),
                                _ => GuestEvent::Marker(vals[1], vals[2]),
                            };
                            out.events.push(ev);
                        }
                        Intrinsic::DebugPrint => {
                            let bytes = mem.read_bytes(vals[0], vals[1]);
                            out.debug_output
                                .push(String::from_utf8_lossy(&bytes).into_owned());
                        }
                    }
                }
            }
            continue;
        }
        // Terminator.
        match &block.term {
            Term::Jump(b) => {
                frame.block = b.0 as usize;
                frame.ip = 0;
            }
            Term::Branch { cond, then_, else_ } => {
                let c = eval(&frame.regs, cond);
                frame.block = if c != 0 { then_.0 } else { else_.0 } as usize;
                frame.ip = 0;
            }
            Term::Switch { on, cases, default } => {
                let v = eval(&frame.regs, on);
                let target = cases
                    .iter()
                    .find(|(cv, _)| *cv == v)
                    .map(|(_, b)| *b)
                    .unwrap_or(*default);
                frame.block = target.0 as usize;
                frame.ip = 0;
            }
            Term::Ret(val) => {
                let v = val.as_ref().map(|op| eval(&frame.regs, op));
                let ret_dst = frame.ret_dst;
                frames.pop();
                match frames.last_mut() {
                    None => {
                        out.status = ConcreteStatus::Returned;
                        return out;
                    }
                    Some(parent) => {
                        if let (Some(dst), Some(v)) = (ret_dst, v) {
                            parent.regs[dst.0 as usize] = v;
                        }
                    }
                }
            }
            Term::Halt { code } => {
                out.status = ConcreteStatus::Halted(eval(&frame.regs, code));
                return out;
            }
            Term::Unterminated => unreachable!("validated programs are terminated"),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;

    #[test]
    fn memory_defaults_to_zero() {
        let m = ConcreteMem::new();
        assert_eq!(m.read_u8(0xdead), 0);
        assert_eq!(m.read_u64(0xbeef), 0);
    }

    #[test]
    fn u64_roundtrip_is_little_endian() {
        let mut m = ConcreteMem::new();
        m.write_u64(100, 0x0102_0304_0506_0708);
        assert_eq!(m.read_u8(100), 0x08);
        assert_eq!(m.read_u8(107), 0x01);
        assert_eq!(m.read_u64(100), 0x0102_0304_0506_0708);
    }

    #[test]
    fn cross_page_access() {
        let mut m = ConcreteMem::new();
        let addr = PAGE_SIZE as u64 - 4;
        m.write_u64(addr, u64::MAX);
        assert_eq!(m.read_u64(addr), u64::MAX);
    }

    #[test]
    fn make_symbolic_replays_inputs() {
        let mut mb = ModuleBuilder::new();
        let buf = mb.data_zeroed(4);
        let name = mb.name_id("input");
        let main = mb.declare("main", 0);
        mb.define(main, move |b| {
            b.make_symbolic(buf, 4u64, name);
            let v = b.load_u8(buf + 1);
            b.halt(v);
        });
        let prog = mb.finish("main").unwrap();
        let mut inputs = InputMap::new();
        inputs.insert("input".to_string(), vec![9, 8, 7, 6]);
        let out = run_concrete(&prog, &inputs, 1000);
        assert_eq!(out.status, ConcreteStatus::Halted(8));
    }

    #[test]
    fn fuel_exhaustion_is_reported() {
        let mut mb = ModuleBuilder::new();
        let main = mb.declare("main", 0);
        mb.define(main, |b| {
            b.loop_(|_| {});
            b.halt(0u64);
        });
        let prog = mb.finish("main").unwrap();
        let out = run_concrete(&prog, &InputMap::new(), 1000);
        assert_eq!(out.status, ConcreteStatus::OutOfFuel);
    }

    #[test]
    fn log_pc_traces_in_order() {
        let mut mb = ModuleBuilder::new();
        let main = mb.declare("main", 0);
        mb.define(main, |b| {
            b.log_pc(1u64, 10u64);
            b.log_pc(2u64, 20u64);
            b.halt(0u64);
        });
        let prog = mb.finish("main").unwrap();
        let out = run_concrete(&prog, &InputMap::new(), 1000);
        assert_eq!(out.hl_trace, vec![(1, 10), (2, 20)]);
    }

    #[test]
    fn exception_event_resolves_name() {
        let mut mb = ModuleBuilder::new();
        let name_bytes = mb.data_bytes(b"ValueError");
        let main = mb.declare("main", 0);
        mb.define(main, move |b| {
            b.trace_event(trace_kind::EXCEPTION, name_bytes, 10u64);
            b.end_symbolic(1u64);
            b.halt(0u64);
        });
        let prog = mb.finish("main").unwrap();
        let out = run_concrete(&prog, &InputMap::new(), 1000);
        assert_eq!(out.events, vec![GuestEvent::Exception("ValueError".into())]);
        assert_eq!(out.status, ConcreteStatus::EndedSymbolic(1));
    }
}
