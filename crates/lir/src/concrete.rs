//! Concrete reference VM for LIR.
//!
//! This is the "vanilla interpreter run" of the paper's workflow: generated
//! test cases are replayed here (outside the symbolic engine) to confirm
//! outcomes and measure line coverage. It is also the differential-testing
//! oracle for the symbolic executor.

use std::collections::HashMap;

use crate::ir::{
    trace_kind, BinOp, Block, FuncId, InputMap, Inst, Intrinsic, MemSize, Operand, Program, Reg,
    Term,
};
use chef_solver::eval_bin;

const PAGE_BITS: u64 = 12;
const PAGE_SIZE: usize = 1 << PAGE_BITS;

/// Sparse byte-addressable memory backed by pages. Unmapped bytes read zero.
#[derive(Default, Clone)]
pub struct ConcreteMem {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>>,
}

impl ConcreteMem {
    /// Empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.pages.get(&(addr >> PAGE_BITS)) {
            Some(p) => p[(addr & (PAGE_SIZE as u64 - 1)) as usize],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, v: u8) {
        let page = self
            .pages
            .entry(addr >> PAGE_BITS)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
        page[(addr & (PAGE_SIZE as u64 - 1)) as usize] = v;
    }

    /// Reads a little-endian u64.
    pub fn read_u64(&self, addr: u64) -> u64 {
        let mut v = 0u64;
        for i in 0..8 {
            v |= (self.read_u8(addr.wrapping_add(i)) as u64) << (8 * i);
        }
        v
    }

    /// Writes a little-endian u64.
    pub fn write_u64(&mut self, addr: u64, v: u64) {
        for i in 0..8 {
            self.write_u8(addr.wrapping_add(i), (v >> (8 * i)) as u8);
        }
    }

    /// Reads `len` bytes.
    pub fn read_bytes(&self, addr: u64, len: u64) -> Vec<u8> {
        (0..len)
            .map(|i| self.read_u8(addr.wrapping_add(i)))
            .collect()
    }

    /// Writes a byte slice.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u64), b);
        }
    }
}

/// Structured guest events observed during a run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GuestEvent {
    /// An exception reached the top level, with its class name.
    Exception(String),
    /// The guest entered a code object.
    EnterCode(u64),
    /// Custom marker `(a, b)`.
    Marker(u64, u64),
}

/// How a concrete run ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConcreteStatus {
    /// `halt code` executed.
    Halted(u64),
    /// `end_symbolic(status)` executed.
    EndedSymbolic(u64),
    /// `abort(code)` executed — models an interpreter crash.
    Aborted(u64),
    /// The step budget ran out (used as the paper's hang detector).
    OutOfFuel,
    /// The entry function returned without halting.
    Returned,
}

/// Result of a concrete run.
#[derive(Clone, Debug)]
pub struct ConcreteOutcome {
    /// Exit status.
    pub status: ConcreteStatus,
    /// Instructions executed.
    pub steps: u64,
    /// `(hlpc, opcode)` pairs in execution order, from `log_pc`.
    pub hl_trace: Vec<(u64, u64)>,
    /// Structured guest events.
    pub events: Vec<GuestEvent>,
    /// Output of `debug_print` calls.
    pub debug_output: Vec<String>,
    /// Whether an `assume` was violated (the replay inputs disagree with the
    /// path the test case was generated for).
    pub assume_violated: bool,
}

struct Frame {
    func: FuncId,
    block: usize,
    ip: usize,
    regs: Vec<u64>,
    ret_dst: Option<Reg>,
}

/// Runs a program concretely.
///
/// `inputs` supplies the bytes written by `make_symbolic` (looked up by the
/// buffer name); missing names leave memory unchanged. `fuel` bounds the
/// number of executed instructions; exhaustion yields
/// [`ConcreteStatus::OutOfFuel`], which the Chef layer reports as a hang.
pub fn run_concrete(prog: &Program, inputs: &InputMap, fuel: u64) -> ConcreteOutcome {
    let mut mem = ConcreteMem::new();
    for seg in &prog.data {
        mem.write_bytes(seg.addr, &seg.bytes);
    }
    let entry = prog.func(prog.entry);
    let mut frames = vec![Frame {
        func: prog.entry,
        block: 0,
        ip: 0,
        regs: vec![0; entry.n_regs as usize],
        ret_dst: None,
    }];
    let mut out = ConcreteOutcome {
        status: ConcreteStatus::Returned,
        steps: 0,
        hl_trace: Vec::new(),
        events: Vec::new(),
        debug_output: Vec::new(),
        assume_violated: false,
    };

    'run: while let Some(frame) = frames.last_mut() {
        if out.steps >= fuel {
            out.status = ConcreteStatus::OutOfFuel;
            return out;
        }
        out.steps += 1;
        let func = prog.func(frame.func);
        let block = &func.blocks[frame.block];
        let eval = |regs: &[u64], op: &Operand| -> u64 {
            match op {
                Operand::Reg(r) => regs[r.0 as usize],
                Operand::Imm(v) => *v,
            }
        };
        if frame.ip < block.insts.len() {
            let inst = &block.insts[frame.ip];
            frame.ip += 1;
            match inst {
                Inst::Const { dst, value } => frame.regs[dst.0 as usize] = *value,
                Inst::Mov { dst, src } => frame.regs[dst.0 as usize] = eval(&frame.regs, src),
                Inst::Bin { op, dst, a, b } => {
                    let va = eval(&frame.regs, a);
                    let vb = eval(&frame.regs, b);
                    frame.regs[dst.0 as usize] = eval_bin(*op, 64, va, vb);
                }
                Inst::Not { dst, a } => frame.regs[dst.0 as usize] = !eval(&frame.regs, a),
                Inst::Select { dst, cond, t, f } => {
                    let c = eval(&frame.regs, cond);
                    frame.regs[dst.0 as usize] = if c != 0 {
                        eval(&frame.regs, t)
                    } else {
                        eval(&frame.regs, f)
                    };
                }
                Inst::Load { dst, addr, size } => {
                    let a = eval(&frame.regs, addr);
                    frame.regs[dst.0 as usize] = match size {
                        MemSize::U8 => mem.read_u8(a) as u64,
                        MemSize::U64 => mem.read_u64(a),
                    };
                }
                Inst::Store { addr, value, size } => {
                    let a = eval(&frame.regs, addr);
                    let v = eval(&frame.regs, value);
                    match size {
                        MemSize::U8 => mem.write_u8(a, v as u8),
                        MemSize::U64 => mem.write_u64(a, v),
                    }
                }
                Inst::Call {
                    dst,
                    func: callee,
                    args,
                } => {
                    let callee_fn = prog.func(*callee);
                    let mut regs = vec![0u64; callee_fn.n_regs as usize];
                    for (i, a) in args.iter().enumerate() {
                        regs[i] = eval(&frame.regs, a);
                    }
                    let ret_dst = *dst;
                    let callee = *callee;
                    frames.push(Frame {
                        func: callee,
                        block: 0,
                        ip: 0,
                        regs,
                        ret_dst,
                    });
                }
                Inst::Intrinsic { dst, intr, args } => {
                    let vals: Vec<u64> = args.iter().map(|a| eval(&frame.regs, a)).collect();
                    match intr {
                        Intrinsic::MakeSymbolic => {
                            let (addr, len, name_id) = (vals[0], vals[1], vals[2]);
                            let name = prog.name(name_id);
                            if let Some(bytes) = inputs.get(name) {
                                for i in 0..len {
                                    let b = bytes.get(i as usize).copied().unwrap_or(0);
                                    mem.write_u8(addr.wrapping_add(i), b);
                                }
                            }
                        }
                        Intrinsic::LogPc => out.hl_trace.push((vals[0], vals[1])),
                        Intrinsic::Assume => {
                            if vals[0] == 0 {
                                out.assume_violated = true;
                            }
                        }
                        Intrinsic::IsSymbolic => {
                            if let Some(d) = dst {
                                frame.regs[d.0 as usize] = 0;
                            }
                        }
                        Intrinsic::UpperBound | Intrinsic::Concretize => {
                            if let Some(d) = dst {
                                frame.regs[d.0 as usize] = vals[0];
                            }
                        }
                        Intrinsic::EndSymbolic => {
                            out.status = ConcreteStatus::EndedSymbolic(vals[0]);
                            break 'run;
                        }
                        Intrinsic::Abort => {
                            out.status = ConcreteStatus::Aborted(vals[0]);
                            break 'run;
                        }
                        Intrinsic::TraceEvent => {
                            let ev = match vals[0] {
                                trace_kind::EXCEPTION => {
                                    let bytes = mem.read_bytes(vals[1], vals[2]);
                                    GuestEvent::Exception(
                                        String::from_utf8_lossy(&bytes).into_owned(),
                                    )
                                }
                                trace_kind::ENTER_CODE => GuestEvent::EnterCode(vals[1]),
                                _ => GuestEvent::Marker(vals[1], vals[2]),
                            };
                            out.events.push(ev);
                        }
                        Intrinsic::DebugPrint => {
                            let bytes = mem.read_bytes(vals[0], vals[1]);
                            out.debug_output
                                .push(String::from_utf8_lossy(&bytes).into_owned());
                        }
                    }
                }
            }
            continue;
        }
        // Terminator.
        match &block.term {
            Term::Jump(b) => {
                frame.block = b.0 as usize;
                frame.ip = 0;
            }
            Term::Branch { cond, then_, else_ } => {
                let c = eval(&frame.regs, cond);
                frame.block = if c != 0 { then_.0 } else { else_.0 } as usize;
                frame.ip = 0;
            }
            Term::Switch { on, cases, default } => {
                let v = eval(&frame.regs, on);
                let target = cases
                    .iter()
                    .find(|(cv, _)| *cv == v)
                    .map(|(_, b)| *b)
                    .unwrap_or(*default);
                frame.block = target.0 as usize;
                frame.ip = 0;
            }
            Term::Ret(val) => {
                let v = val.as_ref().map(|op| eval(&frame.regs, op));
                let ret_dst = frame.ret_dst;
                frames.pop();
                match frames.last_mut() {
                    None => {
                        out.status = ConcreteStatus::Returned;
                        return out;
                    }
                    Some(parent) => {
                        if let (Some(dst), Some(v)) = (ret_dst, v) {
                            parent.regs[dst.0 as usize] = v;
                        }
                    }
                }
            }
            Term::Halt { code } => {
                out.status = ConcreteStatus::Halted(eval(&frame.regs, code));
                return out;
            }
            Term::Unterminated => unreachable!("validated programs are terminated"),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Segment VM: concrete fast-forward over single-path stretches.
//
// The symbolic executor hands us a mid-execution machine image (frames whose
// registers are either concrete values or opaque symbolic tokens, plus a
// lazily-loaded view of the CoW symbolic memory) and we run the program
// concretely until the next instruction that would consume symbolic data.
// The contract that makes the round trip exact: `interns` records every
// `(width, value)` constant the symbolic executor would have interned while
// executing the same instructions, in the same order, so the caller can
// replay them into its expression pool and keep ExprId allocation — and with
// it snapshots, test inputs, and every downstream artifact — byte-identical
// to the all-symbolic run.
// ---------------------------------------------------------------------------

const SEG_PAGE_BITS: u64 = 10;
const SEG_PAGE_SIZE: usize = 1 << SEG_PAGE_BITS;
const SEG_PAGE_WORDS: usize = SEG_PAGE_SIZE / 64;

/// Source of initial bytes for a fast-forward segment: the symbolic memory
/// viewed through constant-folding. `None` marks a symbolic byte.
pub trait PageSource {
    /// The concrete value of the byte at `addr`, or `None` if it is
    /// symbolic.
    fn byte(&self, addr: u64) -> Option<u8>;
}

/// One overlay page. Opaque outside this module; callers only hold them to
/// recycle allocations between segments (see [`SegMem::with_pool`]).
pub struct SegPage {
    bytes: Box<[u8; SEG_PAGE_SIZE]>,
    loaded: [u64; SEG_PAGE_WORDS],
    dirty: [u64; SEG_PAGE_WORDS],
}

impl SegPage {
    fn new() -> Self {
        SegPage {
            bytes: Box::new([0u8; SEG_PAGE_SIZE]),
            loaded: [0; SEG_PAGE_WORDS],
            dirty: [0; SEG_PAGE_WORDS],
        }
    }

    /// Makes a recycled page indistinguishable from a fresh one: with both
    /// bitmaps clear, stale `bytes` are unreachable (every read checks
    /// `loaded` first), so only the bitmaps need zeroing — 1/4 of the
    /// allocate-and-memset cost of [`SegPage::new`].
    fn reset(&mut self) {
        self.loaded = [0; SEG_PAGE_WORDS];
        self.dirty = [0; SEG_PAGE_WORDS];
    }
}

/// Byte-addressable segment memory: an overlay of concrete writes on top of
/// a [`PageSource`], tracking exactly which bytes were written so the caller
/// can fold them back into symbolic memory.
///
/// Pages live in a vector with a hash index; a one-entry cache of the last
/// touched page turns the hot case (consecutive accesses within a page)
/// into a direct vector index instead of a hash lookup per byte.
pub struct SegMem<'a> {
    src: &'a dyn PageSource,
    index: HashMap<u64, usize>,
    pages: Vec<(u64, SegPage)>,
    last: (u64, usize),
    pool: Vec<SegPage>,
}

impl<'a> SegMem<'a> {
    /// Empty overlay over `src`.
    pub fn new(src: &'a dyn PageSource) -> Self {
        Self::with_pool(src, Vec::new())
    }

    /// Empty overlay that draws page allocations from `pool` (as returned
    /// by [`SegMem::drain`]) before heap-allocating fresh ones. Segments run
    /// back to back touch similar page counts, so recycling turns the
    /// per-attempt page cost from allocate-and-zero into a bitmap clear.
    pub fn with_pool(src: &'a dyn PageSource, pool: Vec<SegPage>) -> Self {
        SegMem {
            src,
            index: HashMap::new(),
            pages: Vec::new(),
            last: (u64::MAX, usize::MAX),
            pool,
        }
    }

    fn page_idx(&mut self, key: u64) -> usize {
        if self.last.0 == key {
            return self.last.1;
        }
        let idx = match self.index.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => *e.get(),
            std::collections::hash_map::Entry::Vacant(e) => {
                let idx = self.pages.len();
                e.insert(idx);
                let page = match self.pool.pop() {
                    Some(mut p) => {
                        p.reset();
                        p
                    }
                    None => SegPage::new(),
                };
                self.pages.push((key, page));
                idx
            }
        };
        self.last = (key, idx);
        idx
    }

    /// Reads one byte; `None` means the byte is symbolic in the backing
    /// memory and has not been concretely overwritten.
    pub fn read_u8(&mut self, addr: u64) -> Option<u8> {
        let off = (addr & (SEG_PAGE_SIZE as u64 - 1)) as usize;
        let idx = self.page_idx(addr >> SEG_PAGE_BITS);
        let page = &mut self.pages[idx].1;
        if page.loaded[off / 64] >> (off % 64) & 1 == 1 {
            return Some(page.bytes[off]);
        }
        let b = self.src.byte(addr)?;
        let page = &mut self.pages[idx].1;
        page.bytes[off] = b;
        page.loaded[off / 64] |= 1 << (off % 64);
        Some(b)
    }

    /// Reads one byte, substituting `b'?'` for symbolic bytes — mirrors the
    /// symbolic executor's lossy string reads in `trace_event`.
    pub fn read_u8_lossy(&mut self, addr: u64) -> u8 {
        self.read_u8(addr).unwrap_or(b'?')
    }

    /// Writes one byte (concretizes it in the overlay).
    pub fn write_u8(&mut self, addr: u64, v: u8) {
        let off = (addr & (SEG_PAGE_SIZE as u64 - 1)) as usize;
        let idx = self.page_idx(addr >> SEG_PAGE_BITS);
        let page = &mut self.pages[idx].1;
        page.bytes[off] = v;
        page.loaded[off / 64] |= 1 << (off % 64);
        page.dirty[off / 64] |= 1 << (off % 64);
    }

    /// All bytes written during the segment, as `(addr, value)` in address
    /// order.
    pub fn into_dirty(self) -> Vec<(u64, u8)> {
        self.drain().0
    }

    /// [`SegMem::into_dirty`], plus every page allocation this overlay used
    /// (touched and pooled alike) for the caller to feed into the next
    /// segment's [`SegMem::with_pool`].
    pub fn drain(self) -> (Vec<(u64, u8)>, Vec<SegPage>) {
        let mut pages = self.pages;
        pages.sort_unstable_by_key(|(k, _)| *k);
        let mut out = Vec::new();
        for (k, page) in &pages {
            for (wi, &word) in page.dirty.iter().enumerate() {
                let mut bits = word;
                while bits != 0 {
                    let off = wi * 64 + bits.trailing_zeros() as usize;
                    out.push(((k << SEG_PAGE_BITS) | off as u64, page.bytes[off]));
                    bits &= bits - 1;
                }
            }
        }
        let mut pool = self.pool;
        pool.extend(pages.into_iter().map(|(_, p)| p));
        (out, pool)
    }
}

/// One call frame of the segment machine. Registers hold either concrete
/// values or opaque symbolic tokens (the caller's expression ids); the `sym`
/// bitmap says which. Token-holding registers can only be copied
/// (`mov`/call args/`ret`/`select` arms) — any computation on one stops the
/// segment.
pub struct SegFrame {
    /// Function this frame executes.
    pub func: FuncId,
    /// Current block index.
    pub block: usize,
    /// Next instruction index within the block (== `insts.len()` at a
    /// terminator).
    pub ip: usize,
    /// Register values, or symbolic tokens where `sym` is set.
    pub regs: Vec<u64>,
    /// Bitmap over `regs`: bit `r` set means register `r` holds a token.
    pub sym: Vec<u64>,
    /// Bitmap over `regs`: bit `r` set means the segment wrote register
    /// `r`. Registers with the bit clear still hold exactly what the
    /// caller seeded, so the caller can skip converting them back.
    pub wr: Vec<u64>,
    /// Caller register receiving this frame's return value.
    pub ret_dst: Option<Reg>,
}

impl SegFrame {
    /// A frame with `n_regs` zeroed, fully concrete registers.
    pub fn new(func: FuncId, block: usize, ip: usize, n_regs: usize, ret_dst: Option<Reg>) -> Self {
        SegFrame {
            func,
            block,
            ip,
            regs: vec![0; n_regs],
            sym: vec![0; n_regs.div_ceil(64)],
            wr: vec![0; n_regs.div_ceil(64)],
            ret_dst,
        }
    }

    /// Writes register `r`, updating the symbolic and written bitmaps.
    pub fn write(&mut self, r: u32, v: u64, s: bool) {
        self.regs[r as usize] = v;
        self.set_sym(r, s);
        self.wr[r as usize / 64] |= 1 << (r % 64);
    }

    /// Whether the segment wrote register `r`.
    pub fn is_written(&self, r: u32) -> bool {
        self.wr[r as usize / 64] >> (r % 64) & 1 == 1
    }

    /// Whether the segment wrote no register of this frame.
    pub fn untouched(&self) -> bool {
        self.wr.iter().all(|&w| w == 0)
    }

    /// Whether register `r` holds a symbolic token.
    pub fn is_sym(&self, r: u32) -> bool {
        self.sym[r as usize / 64] >> (r % 64) & 1 == 1
    }

    /// Marks register `r` as holding a symbolic token (or clears the mark).
    pub fn set_sym(&mut self, r: u32, s: bool) {
        if s {
            self.sym[r as usize / 64] |= 1 << (r % 64);
        } else {
            self.sym[r as usize / 64] &= !(1 << (r % 64));
        }
    }
}

/// Supplies caller frames lying *below* the segment's working stack, on
/// demand. The caller seeds [`run_segment`] with only the top of its frame
/// stack; when a `ret` needs the next-deeper frame, the VM asks for it
/// here. Deep stacks thus cost nothing unless the segment actually returns
/// into them — the common case converts one frame instead of dozens.
pub trait FrameSource {
    /// Converts and returns the next-deeper caller frame, or `None` when
    /// the working stack already contains the program's entry frame.
    fn pop_into(&mut self) -> Option<SegFrame>;
}

/// A [`FrameSource`] with no frames: the seeded stack is the whole stack.
pub struct NoCallers;

impl FrameSource for NoCallers {
    fn pop_into(&mut self) -> Option<SegFrame> {
        None
    }
}

/// Why a fast-forward segment stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SegStop {
    /// The instruction at `ip` consumes live symbolic register data (a
    /// `Bin`/`Not`/`Select` operand, a symbolic address or store value).
    /// Such stops cluster: nearby instructions tend to touch the same
    /// symbolic values, so the caller should back off before retrying.
    Boundary,
    /// The instruction at `ip` is a one-shot symbolic event — a
    /// `make_symbolic`, solver-backed intrinsic, fork, or path terminator.
    /// The symbolic executor handles it in a single step, after which
    /// fast-forwarding is immediately worthwhile again.
    Event,
    /// A load with a concrete address hit a symbolic memory byte
    /// mid-segment; the load must be re-executed symbolically.
    TaintedLoad,
    /// The caller's fuel bound ran out mid-segment.
    OutOfFuel,
}

/// Events observed during a segment, in execution order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SegEvent {
    /// `log_pc(pc, opcode)`.
    LogPc(u64, u64),
    /// A structured guest event.
    Guest(GuestEvent),
}

/// Result of [`run_segment`]. The stopping instruction is *not* executed:
/// the frame stack's `ip` points at it, and it contributes nothing to
/// `steps`, `events`, or `interns`.
pub struct SegOutcome {
    /// Why the segment stopped.
    pub stop: SegStop,
    /// Instructions (and terminators) executed.
    pub steps: u64,
    /// Guest-visible events, in order.
    pub events: Vec<SegEvent>,
    /// Every `(width, value)` constant the symbolic executor would have
    /// interned executing the same instructions, in interning order.
    pub interns: Vec<(u8, u64)>,
    /// Number of caller-provided frames (seeded or pulled from the
    /// [`FrameSource`]) still at the bottom of the final stack. Those
    /// frames are the caller's own — only registers flagged in their `wr`
    /// bitmaps changed — while every frame above them was pushed by a call
    /// within the segment.
    pub orig_live: usize,
}

fn peek(frame: &SegFrame, op: &Operand) -> (u64, bool) {
    match op {
        Operand::Reg(r) => (frame.regs[r.0 as usize], frame.is_sym(r.0)),
        Operand::Imm(v) => (*v, false),
    }
}

/// Deduplicating intern log. Interning a `(width, value)` pair that the
/// pool has already seen is a no-op, so only the *first* occurrence of each
/// pair within a segment needs replaying — later duplicates change nothing.
/// The dedup set is a small open-addressing table with a multiplicative
/// hash, far cheaper per instruction than the pool's interning map, which
/// is what turns replay from a per-instruction cost into a
/// per-unique-constant cost.
struct InternLog {
    entries: Vec<(u8, u64)>,
    /// Open-addressing set of logged pairs; `width == 0` marks empty slots.
    table: Vec<(u8, u64)>,
    mask: usize,
    occupied: usize,
}

impl InternLog {
    fn new() -> Self {
        const CAP: usize = 1024;
        InternLog {
            entries: Vec::with_capacity(CAP / 2),
            table: vec![(0, 0); CAP],
            mask: CAP - 1,
            occupied: 0,
        }
    }

    #[inline]
    fn slot(table: &[(u8, u64)], mask: usize, w: u8, v: u64) -> usize {
        let h = (v ^ ((w as u64) << 56)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut i = (h >> 32) as usize & mask;
        loop {
            let (tw, tv) = table[i];
            if tw == 0 || (tw == w && tv == v) {
                return i;
            }
            i = (i + 1) & mask;
        }
    }

    #[inline]
    fn push(&mut self, w: u8, v: u64) {
        let i = Self::slot(&self.table, self.mask, w, v);
        if self.table[i].0 != 0 {
            return;
        }
        self.table[i] = (w, v);
        self.entries.push((w, v));
        self.occupied += 1;
        if self.occupied * 4 > self.table.len() * 3 {
            self.grow();
        }
    }

    #[cold]
    fn grow(&mut self) {
        let cap = self.table.len() * 2;
        let mask = cap - 1;
        let mut table = vec![(0u8, 0u64); cap];
        for &(w, v) in &self.entries {
            let i = Self::slot(&table, mask, w, v);
            table[i] = (w, v);
        }
        self.table = table;
        self.mask = mask;
    }
}

fn log_imm(interns: &mut InternLog, op: &Operand) {
    if let Operand::Imm(v) = op {
        interns.push(64, *v);
    }
}

/// The interning footprint of the symbolic executor's truthiness test
/// (`is_nonzero`): the zero constant, the folded equality, its negation.
fn log_truthy(interns: &mut InternLog, v: u64) {
    interns.push(64, 0);
    interns.push(1, (v == 0) as u64);
    interns.push(1, (v != 0) as u64);
}

// ---------------------------------------------------------------------------
// Superinstruction blocks.
//
// Hot straight-line block bodies are lazily fused (counter-triggered, per
// function × block) into preflattened micro-op arrays with predecoded
// operands, which the segment VM executes without per-instruction enum
// dispatch. Micro-ops are 1:1 with `Block::insts` — micro-op `i` covers
// instruction `i` — so the frame's `ip` needs no translation and a segment
// can enter a fused block mid-body (e.g. when resuming after a stop).
// Non-fusable instructions compile to `Bail`, which hands that single
// instruction back to the generic dispatch loop. The micro runner mirrors
// the generic loop's intern-log, fuel, and stop semantics *exactly*: fused
// and unfused execution are byte-identical to the symbolic executor.
// ---------------------------------------------------------------------------

/// Block entries (at `ip == 0`) after which a block's body is fused.
const SUPER_THRESHOLD: u32 = 16;

/// Minimum fusable instructions for a fusion to pay for its dispatch.
const SUPER_MIN_FUSABLE: usize = 4;

/// Predecoded operand of a micro-op.
#[derive(Clone, Copy)]
enum Src {
    Reg(u32),
    Imm(u64),
}

impl Src {
    fn of(op: &Operand) -> Src {
        match op {
            Operand::Reg(r) => Src::Reg(r.0),
            Operand::Imm(v) => Src::Imm(*v),
        }
    }
}

#[inline]
fn peek_src(frame: &SegFrame, s: Src) -> (u64, bool) {
    match s {
        Src::Reg(r) => (frame.regs[r as usize], frame.is_sym(r)),
        Src::Imm(v) => (v, false),
    }
}

#[inline]
fn log_src(ilog: &mut InternLog, s: Src) {
    if let Src::Imm(v) = s {
        ilog.push(64, v);
    }
}

/// One fused instruction of a superinstruction block.
#[derive(Clone, Copy)]
enum MicroOp {
    Const {
        dst: u32,
        value: u64,
    },
    MovR {
        dst: u32,
        src: u32,
    },
    MovI {
        dst: u32,
        imm: u64,
    },
    Bin {
        op: BinOp,
        pred: bool,
        dst: u32,
        a: Src,
        b: Src,
    },
    Not {
        dst: u32,
        a: Src,
    },
    LoadU8 {
        dst: u32,
        addr: Src,
    },
    LoadU64 {
        dst: u32,
        addr: Src,
    },
    StoreU8 {
        addr: Src,
        value: Src,
    },
    StoreU64 {
        addr: Src,
        value: Src,
    },
    /// Non-fusable instruction: dispatch it via the generic loop.
    Bail,
}

enum SuperEntry {
    /// Block entered this many times; fuses at [`SUPER_THRESHOLD`].
    Counting(u32),
    /// Fused micro-op array, 1:1 with the block's `insts`.
    Fused(Box<[MicroOp]>),
    /// Fusing would not pay (mostly non-fusable instructions).
    Skip,
}

/// Counter-triggered cache of fused straight-line blocks, keyed by
/// `(function, block)`. Owned by the symbolic executor so fusions persist
/// across segments (and across every state exploring the same program);
/// purely an execution-speed structure — it never affects results.
#[derive(Default)]
pub struct SuperCache {
    blocks: HashMap<(u32, u32), SuperEntry>,
}

impl SuperCache {
    /// An empty cache.
    pub fn new() -> Self {
        SuperCache::default()
    }

    /// Number of blocks fused so far (diagnostics).
    pub fn fused_blocks(&self) -> usize {
        self.blocks
            .iter()
            .filter(|(_, e)| matches!(e, SuperEntry::Fused(_)))
            .count()
    }

    /// Called when the VM is about to execute inside a block body. Fresh
    /// entries (`ip == 0`) bump the block's hot counter and trigger fusion
    /// at the threshold; mid-body resumes reuse an existing fusion without
    /// counting. Returns the fused micro-ops, if any.
    fn enter(
        &mut self,
        func: FuncId,
        block_idx: u32,
        ip: usize,
        block: &Block,
    ) -> Option<&[MicroOp]> {
        use std::collections::hash_map::Entry;
        let e = match self.blocks.entry((func.0, block_idx)) {
            Entry::Occupied(e) => e.into_mut(),
            Entry::Vacant(v) => v.insert(SuperEntry::Counting(0)),
        };
        if let SuperEntry::Counting(n) = e {
            if ip == 0 {
                *n += 1;
                if *n >= SUPER_THRESHOLD {
                    *e = fuse(block);
                }
            }
        }
        match e {
            SuperEntry::Fused(ops) => Some(ops),
            _ => None,
        }
    }
}

fn fuse(block: &Block) -> SuperEntry {
    // What fusion buys is dispatch-free *runs*: the micro runner executes
    // until the next `Bail`, then the generic loop finishes the block. A
    // block whose longest fusable run is short would pay the cache probe
    // and runner entry for nothing.
    let mut longest = 0usize;
    let mut run = 0usize;
    for inst in &block.insts {
        if inst.fusable() {
            run += 1;
            longest = longest.max(run);
        } else {
            run = 0;
        }
    }
    if longest < SUPER_MIN_FUSABLE {
        return SuperEntry::Skip;
    }
    let ops: Vec<MicroOp> = block.insts.iter().map(micro_of).collect();
    SuperEntry::Fused(ops.into_boxed_slice())
}

fn micro_of(inst: &Inst) -> MicroOp {
    match inst {
        Inst::Const { dst, value } => MicroOp::Const {
            dst: dst.0,
            value: *value,
        },
        Inst::Mov { dst, src } => match src {
            Operand::Reg(r) => MicroOp::MovR {
                dst: dst.0,
                src: r.0,
            },
            Operand::Imm(v) => MicroOp::MovI {
                dst: dst.0,
                imm: *v,
            },
        },
        Inst::Bin { op, dst, a, b } => MicroOp::Bin {
            op: *op,
            pred: op.is_predicate(),
            dst: dst.0,
            a: Src::of(a),
            b: Src::of(b),
        },
        Inst::Not { dst, a } => MicroOp::Not {
            dst: dst.0,
            a: Src::of(a),
        },
        Inst::Load { dst, addr, size } => match size {
            MemSize::U8 => MicroOp::LoadU8 {
                dst: dst.0,
                addr: Src::of(addr),
            },
            MemSize::U64 => MicroOp::LoadU64 {
                dst: dst.0,
                addr: Src::of(addr),
            },
        },
        Inst::Store { addr, value, size } => match size {
            MemSize::U8 => MicroOp::StoreU8 {
                addr: Src::of(addr),
                value: Src::of(value),
            },
            MemSize::U64 => MicroOp::StoreU64 {
                addr: Src::of(addr),
                value: Src::of(value),
            },
        },
        Inst::Select { .. } | Inst::Call { .. } | Inst::Intrinsic { .. } => MicroOp::Bail,
    }
}

enum MicroExit {
    /// Stop the whole segment at the op `frame.ip` points to.
    Stop(SegStop),
    /// The op at `frame.ip` is not fused; dispatch it generically.
    Bail,
    /// Reached the end of the body (`frame.ip == insts.len()`).
    Done,
}

/// Executes fused micro-ops starting at `frame.ip`, mirroring the generic
/// loop's per-instruction fuel checks and intern-log order exactly.
fn run_micro(
    ops: &[MicroOp],
    frame: &mut SegFrame,
    mem: &mut SegMem<'_>,
    ilog: &mut InternLog,
    steps: &mut u64,
    fuel: u64,
) -> MicroExit {
    while let Some(op) = ops.get(frame.ip) {
        if *steps >= fuel {
            return MicroExit::Stop(SegStop::OutOfFuel);
        }
        match *op {
            MicroOp::Bail => return MicroExit::Bail,
            MicroOp::Const { dst, value } => {
                ilog.push(64, value);
                frame.write(dst, value, false);
            }
            MicroOp::MovR { dst, src } => {
                let v = frame.regs[src as usize];
                let s = frame.is_sym(src);
                frame.write(dst, v, s);
            }
            MicroOp::MovI { dst, imm } => {
                ilog.push(64, imm);
                frame.write(dst, imm, false);
            }
            MicroOp::Bin {
                op,
                pred,
                dst,
                a,
                b,
            } => {
                let (va, sa) = peek_src(frame, a);
                let (vb, sb) = peek_src(frame, b);
                if sa || sb {
                    return MicroExit::Stop(SegStop::Boundary);
                }
                log_src(ilog, a);
                log_src(ilog, b);
                let r = eval_bin(op, 64, va, vb);
                if pred {
                    ilog.push(1, r);
                }
                ilog.push(64, r);
                frame.write(dst, r, false);
            }
            MicroOp::Not { dst, a } => {
                let (va, sa) = peek_src(frame, a);
                if sa {
                    return MicroExit::Stop(SegStop::Boundary);
                }
                log_src(ilog, a);
                ilog.push(64, !va);
                frame.write(dst, !va, false);
            }
            MicroOp::LoadU8 { dst, addr } => {
                let (a, sa) = peek_src(frame, addr);
                if sa {
                    return MicroExit::Stop(SegStop::Boundary);
                }
                let Some(b) = mem.read_u8(a) else {
                    return MicroExit::Stop(SegStop::TaintedLoad);
                };
                log_src(ilog, addr);
                ilog.push(64, b as u64);
                frame.write(dst, b as u64, false);
            }
            MicroOp::LoadU64 { dst, addr } => {
                let (a, sa) = peek_src(frame, addr);
                if sa {
                    return MicroExit::Stop(SegStop::Boundary);
                }
                let mut bytes = [0u8; 8];
                for i in 0..8u64 {
                    match mem.read_u8(a.wrapping_add(i)) {
                        Some(b) => bytes[i as usize] = b,
                        None => return MicroExit::Stop(SegStop::TaintedLoad),
                    }
                }
                log_src(ilog, addr);
                let mut acc = bytes[0] as u64;
                for (i, &b) in bytes.iter().enumerate().skip(1) {
                    acc |= (b as u64) << (8 * i);
                    ilog.push(8 * (i as u8 + 1), acc);
                }
                frame.write(dst, acc, false);
            }
            MicroOp::StoreU8 { addr, value } => {
                let (a, sa) = peek_src(frame, addr);
                let (v, sv) = peek_src(frame, value);
                if sa || sv {
                    return MicroExit::Stop(SegStop::Boundary);
                }
                log_src(ilog, addr);
                log_src(ilog, value);
                ilog.push(8, v & 0xff);
                mem.write_u8(a, v as u8);
            }
            MicroOp::StoreU64 { addr, value } => {
                let (a, sa) = peek_src(frame, addr);
                let (v, sv) = peek_src(frame, value);
                if sa || sv {
                    return MicroExit::Stop(SegStop::Boundary);
                }
                log_src(ilog, addr);
                log_src(ilog, value);
                for i in 0..8 {
                    ilog.push(8, (v >> (8 * i)) & 0xff);
                    mem.write_u8(a.wrapping_add(i), (v >> (8 * i)) as u8);
                }
            }
        }
        frame.ip += 1;
        *steps += 1;
    }
    MicroExit::Done
}

/// Runs the segment machine until the next symbolic-consuming event or fuel
/// exhaustion. `frames` and `mem` are left at the stop point; the
/// instruction that caused the stop has not been executed. Equivalent to
/// [`run_segment_cached`] with a throwaway [`SuperCache`].
pub fn run_segment(
    prog: &Program,
    frames: &mut Vec<SegFrame>,
    below: &mut dyn FrameSource,
    mem: &mut SegMem<'_>,
    fuel: u64,
) -> SegOutcome {
    let mut cache = SuperCache::new();
    run_segment_cached(prog, frames, below, mem, fuel, &mut cache)
}

/// [`run_segment`] with a caller-owned [`SuperCache`], so block fusions
/// learned in one segment speed up every later segment over the same
/// program.
pub fn run_segment_cached(
    prog: &Program,
    frames: &mut Vec<SegFrame>,
    below: &mut dyn FrameSource,
    mem: &mut SegMem<'_>,
    fuel: u64,
    cache: &mut SuperCache,
) -> SegOutcome {
    let mut out = SegOutcome {
        stop: SegStop::Boundary,
        steps: 0,
        events: Vec::new(),
        interns: Vec::new(),
        orig_live: frames.len(),
    };
    let mut ilog = InternLog::new();
    // The last `(func, block)` body the cache had nothing for; skipping the
    // lookup until the block changes (or a fresh `ip == 0` entry re-counts)
    // keeps unfused blocks at one hash probe per entry, not per instruction.
    let mut unfused: (u32, u32) = (u32::MAX, u32::MAX);
    macro_rules! stop {
        ($why:expr) => {{
            out.stop = $why;
            out.interns = ilog.entries;
            return out;
        }};
    }
    loop {
        let Some(frame) = frames.last_mut() else {
            // Final `ret` is stop-class, so the stack never drains; guard
            // against a caller handing us an empty stack anyway.
            stop!(SegStop::Boundary);
        };
        if out.steps >= fuel {
            stop!(SegStop::OutOfFuel);
        }
        let func = prog.func(frame.func);
        let block = &func.blocks[frame.block];
        if frame.ip < block.insts.len() {
            let key = (frame.func.0, frame.block as u32);
            if frame.ip == 0 || key != unfused {
                if let Some(ops) = cache.enter(frame.func, key.1, frame.ip, block) {
                    match run_micro(ops, frame, mem, &mut ilog, &mut out.steps, fuel) {
                        MicroExit::Stop(why) => stop!(why),
                        MicroExit::Done => continue,
                        // Dispatch the op at `frame.ip` generically below —
                        // and latch the block as generic until its next
                        // fresh entry, so a bail point mid-block does not
                        // re-probe the cache (and immediately re-bail) on
                        // every following instruction.
                        MicroExit::Bail => unfused = key,
                    }
                } else {
                    unfused = key;
                }
            }
            let inst = &block.insts[frame.ip];
            match inst {
                Inst::Const { dst, value } => {
                    ilog.push(64, *value);
                    frame.write(dst.0, *value, false);
                }
                Inst::Mov { dst, src } => {
                    let (v, s) = peek(frame, src);
                    log_imm(&mut ilog, src);
                    frame.write(dst.0, v, s);
                }
                Inst::Bin { op, dst, a, b } => {
                    let (va, sa) = peek(frame, a);
                    let (vb, sb) = peek(frame, b);
                    if sa || sb {
                        stop!(SegStop::Boundary);
                    }
                    log_imm(&mut ilog, a);
                    log_imm(&mut ilog, b);
                    let r = eval_bin(*op, 64, va, vb);
                    if op.is_predicate() {
                        ilog.push(1, r);
                    }
                    ilog.push(64, r);
                    frame.write(dst.0, r, false);
                }
                Inst::Not { dst, a } => {
                    let (va, sa) = peek(frame, a);
                    if sa {
                        stop!(SegStop::Boundary);
                    }
                    log_imm(&mut ilog, a);
                    ilog.push(64, !va);
                    frame.write(dst.0, !va, false);
                }
                Inst::Select { dst, cond, t, f } => {
                    let (vc, sc) = peek(frame, cond);
                    if sc {
                        stop!(SegStop::Boundary);
                    }
                    log_imm(&mut ilog, cond);
                    log_truthy(&mut ilog, vc);
                    log_imm(&mut ilog, t);
                    log_imm(&mut ilog, f);
                    // `ite` with a constant condition folds to the chosen
                    // arm unchanged, so a symbolic arm is a pure copy.
                    let (v, s) = if vc != 0 {
                        peek(frame, t)
                    } else {
                        peek(frame, f)
                    };
                    frame.write(dst.0, v, s);
                }
                Inst::Load { dst, addr, size } => {
                    let (a, sa) = peek(frame, addr);
                    if sa {
                        stop!(SegStop::Boundary);
                    }
                    let n = match size {
                        MemSize::U8 => 1u64,
                        MemSize::U64 => 8,
                    };
                    let mut bytes = [0u8; 8];
                    for i in 0..n {
                        match mem.read_u8(a.wrapping_add(i)) {
                            Some(b) => bytes[i as usize] = b,
                            None => stop!(SegStop::TaintedLoad),
                        }
                    }
                    log_imm(&mut ilog, addr);
                    match size {
                        MemSize::U8 => {
                            // `zext` of the constant byte.
                            ilog.push(64, bytes[0] as u64);
                            frame.write(dst.0, bytes[0] as u64, false);
                        }
                        MemSize::U64 => {
                            // The seven little-endian `concat` folds of
                            // `SymMem::read_u64`.
                            let mut acc = bytes[0] as u64;
                            for (i, &b) in bytes.iter().enumerate().skip(1) {
                                acc |= (b as u64) << (8 * i);
                                ilog.push(8 * (i as u8 + 1), acc);
                            }
                            frame.write(dst.0, acc, false);
                        }
                    }
                }
                Inst::Store { addr, value, size } => {
                    let (a, sa) = peek(frame, addr);
                    let (v, sv) = peek(frame, value);
                    if sa || sv {
                        stop!(SegStop::Boundary);
                    }
                    log_imm(&mut ilog, addr);
                    log_imm(&mut ilog, value);
                    match size {
                        MemSize::U8 => {
                            // The `extract` fold of the low byte.
                            ilog.push(8, v & 0xff);
                            mem.write_u8(a, v as u8);
                        }
                        MemSize::U64 => {
                            // The eight `extract` folds of
                            // `SymMem::write_u64`.
                            for i in 0..8 {
                                ilog.push(8, (v >> (8 * i)) & 0xff);
                                mem.write_u8(a.wrapping_add(i), (v >> (8 * i)) as u8);
                            }
                        }
                    }
                }
                Inst::Call {
                    dst,
                    func: callee,
                    args,
                } => {
                    // The symbolic executor zero-fills callee registers
                    // before evaluating arguments.
                    ilog.push(64, 0);
                    let callee_fn = prog.func(*callee);
                    let n = callee_fn.n_regs as usize;
                    let mut callee_frame = SegFrame::new(*callee, 0, 0, n, *dst);
                    for (i, arg) in args.iter().enumerate() {
                        let (v, s) = peek(frame, arg);
                        log_imm(&mut ilog, arg);
                        callee_frame.write(i as u32, v, s);
                    }
                    frame.ip += 1;
                    out.steps += 1;
                    frames.push(callee_frame);
                    continue;
                }
                Inst::Intrinsic { dst, intr, args } => {
                    match intr {
                        Intrinsic::MakeSymbolic
                        | Intrinsic::UpperBound
                        | Intrinsic::EndSymbolic
                        | Intrinsic::Abort => stop!(SegStop::Event),
                        Intrinsic::Assume => {
                            let (v, s) = peek(frame, &args[0]);
                            if s || v == 0 {
                                // A symbolic guard forks feasibility; a
                                // failed concrete guard terminates the
                                // path. Both belong to the symbolic
                                // executor.
                                stop!(SegStop::Event);
                            }
                            log_imm(&mut ilog, &args[0]);
                            log_truthy(&mut ilog, v);
                        }
                        Intrinsic::LogPc => {
                            let (pc, s0) = peek(frame, &args[0]);
                            let (opcode, s1) = peek(frame, &args[1]);
                            if s0 || s1 {
                                stop!(SegStop::Event);
                            }
                            log_imm(&mut ilog, &args[0]);
                            log_imm(&mut ilog, &args[1]);
                            out.events.push(SegEvent::LogPc(pc, opcode));
                        }
                        Intrinsic::IsSymbolic => {
                            let (_, s) = peek(frame, &args[0]);
                            log_imm(&mut ilog, &args[0]);
                            // The token bit is exact: a register is marked
                            // symbolic iff its expression is non-constant.
                            let flag = s as u64;
                            ilog.push(64, flag);
                            if let Some(d) = dst {
                                frame.write(d.0, flag, false);
                            }
                        }
                        Intrinsic::Concretize => {
                            let (v, s) = peek(frame, &args[0]);
                            if s {
                                stop!(SegStop::Event);
                            }
                            log_imm(&mut ilog, &args[0]);
                            if let Some(d) = dst {
                                ilog.push(64, v);
                                frame.write(d.0, v, false);
                            }
                        }
                        Intrinsic::TraceEvent => {
                            // Executable even with symbolic arguments: the
                            // symbolic executor reads them through
                            // `as_const(..).unwrap_or(0)` and substitutes
                            // `?` for symbolic string bytes.
                            let mut vals = [0u64; 3];
                            for (i, arg) in args.iter().enumerate() {
                                let (v, s) = peek(frame, arg);
                                log_imm(&mut ilog, arg);
                                vals[i] = if s { 0 } else { v };
                            }
                            let ev = match vals[0] {
                                trace_kind::EXCEPTION => {
                                    let len = vals[2].min(256);
                                    let bytes: Vec<u8> = (0..len)
                                        .map(|i| mem.read_u8_lossy(vals[1].wrapping_add(i)))
                                        .collect();
                                    GuestEvent::Exception(
                                        String::from_utf8_lossy(&bytes).into_owned(),
                                    )
                                }
                                trace_kind::ENTER_CODE => GuestEvent::EnterCode(vals[1]),
                                _ => GuestEvent::Marker(vals[1], vals[2]),
                            };
                            out.events.push(SegEvent::Guest(ev));
                        }
                        Intrinsic::DebugPrint => {
                            // The symbolic executor evaluates the operands
                            // and otherwise ignores the call.
                            for arg in args.iter() {
                                log_imm(&mut ilog, arg);
                            }
                        }
                    }
                }
            }
            frame.ip += 1;
            out.steps += 1;
            continue;
        }
        // Terminator.
        match &block.term {
            Term::Jump(b) => {
                frame.block = b.0 as usize;
                frame.ip = 0;
                out.steps += 1;
            }
            Term::Branch { cond, then_, else_ } => {
                let (vc, sc) = peek(frame, cond);
                if sc {
                    stop!(SegStop::Event);
                }
                log_imm(&mut ilog, cond);
                log_truthy(&mut ilog, vc);
                frame.block = if vc != 0 { then_.0 } else { else_.0 } as usize;
                frame.ip = 0;
                out.steps += 1;
            }
            Term::Switch { on, cases, default } => {
                let (v, s) = peek(frame, on);
                if s {
                    stop!(SegStop::Event);
                }
                log_imm(&mut ilog, on);
                let target = cases
                    .iter()
                    .find(|(cv, _)| *cv == v)
                    .map(|(_, b)| *b)
                    .unwrap_or(*default);
                frame.block = target.0 as usize;
                frame.ip = 0;
                out.steps += 1;
            }
            Term::Ret(val) => {
                if frames.len() == 1 {
                    match below.pop_into() {
                        Some(parent) => {
                            frames.insert(0, parent);
                            out.orig_live += 1;
                        }
                        // Returning from the entry function terminates
                        // the path — symbolic territory.
                        None => stop!(SegStop::Event),
                    }
                }
                let frame = frames.last_mut().expect("re-borrow after insert");
                let ret = val.as_ref().map(|op| {
                    let vs = peek(frame, op);
                    log_imm(&mut ilog, op);
                    vs
                });
                let ret_dst = frame.ret_dst;
                frames.pop();
                out.orig_live = out.orig_live.min(frames.len());
                let parent = frames.last_mut().expect("depth > 1");
                if let (Some(d), Some((v, s))) = (ret_dst, ret) {
                    parent.write(d.0, v, s);
                }
                out.steps += 1;
            }
            Term::Halt { .. } => stop!(SegStop::Event),
            Term::Unterminated => unreachable!("validated programs are terminated"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;

    #[test]
    fn memory_defaults_to_zero() {
        let m = ConcreteMem::new();
        assert_eq!(m.read_u8(0xdead), 0);
        assert_eq!(m.read_u64(0xbeef), 0);
    }

    #[test]
    fn u64_roundtrip_is_little_endian() {
        let mut m = ConcreteMem::new();
        m.write_u64(100, 0x0102_0304_0506_0708);
        assert_eq!(m.read_u8(100), 0x08);
        assert_eq!(m.read_u8(107), 0x01);
        assert_eq!(m.read_u64(100), 0x0102_0304_0506_0708);
    }

    #[test]
    fn cross_page_access() {
        let mut m = ConcreteMem::new();
        let addr = PAGE_SIZE as u64 - 4;
        m.write_u64(addr, u64::MAX);
        assert_eq!(m.read_u64(addr), u64::MAX);
    }

    #[test]
    fn make_symbolic_replays_inputs() {
        let mut mb = ModuleBuilder::new();
        let buf = mb.data_zeroed(4);
        let name = mb.name_id("input");
        let main = mb.declare("main", 0);
        mb.define(main, move |b| {
            b.make_symbolic(buf, 4u64, name);
            let v = b.load_u8(buf + 1);
            b.halt(v);
        });
        let prog = mb.finish("main").unwrap();
        let mut inputs = InputMap::new();
        inputs.insert("input".to_string(), vec![9, 8, 7, 6]);
        let out = run_concrete(&prog, &inputs, 1000);
        assert_eq!(out.status, ConcreteStatus::Halted(8));
    }

    #[test]
    fn fuel_exhaustion_is_reported() {
        let mut mb = ModuleBuilder::new();
        let main = mb.declare("main", 0);
        mb.define(main, |b| {
            b.loop_(|_| {});
            b.halt(0u64);
        });
        let prog = mb.finish("main").unwrap();
        let out = run_concrete(&prog, &InputMap::new(), 1000);
        assert_eq!(out.status, ConcreteStatus::OutOfFuel);
    }

    #[test]
    fn log_pc_traces_in_order() {
        let mut mb = ModuleBuilder::new();
        let main = mb.declare("main", 0);
        mb.define(main, |b| {
            b.log_pc(1u64, 10u64);
            b.log_pc(2u64, 20u64);
            b.halt(0u64);
        });
        let prog = mb.finish("main").unwrap();
        let out = run_concrete(&prog, &InputMap::new(), 1000);
        assert_eq!(out.hl_trace, vec![(1, 10), (2, 20)]);
    }

    #[test]
    fn exception_event_resolves_name() {
        let mut mb = ModuleBuilder::new();
        let name_bytes = mb.data_bytes(b"ValueError");
        let main = mb.declare("main", 0);
        mb.define(main, move |b| {
            b.trace_event(trace_kind::EXCEPTION, name_bytes, 10u64);
            b.end_symbolic(1u64);
            b.halt(0u64);
        });
        let prog = mb.finish("main").unwrap();
        let out = run_concrete(&prog, &InputMap::new(), 1000);
        assert_eq!(out.events, vec![GuestEvent::Exception("ValueError".into())]);
        assert_eq!(out.status, ConcreteStatus::EndedSymbolic(1));
    }

    /// Program data concrete, everything else zero — the segment analogue
    /// of a fresh `run_concrete` image.
    struct DataSource {
        mem: ConcreteMem,
    }

    impl DataSource {
        fn of(prog: &Program) -> Self {
            let mut mem = ConcreteMem::new();
            for seg in &prog.data {
                mem.write_bytes(seg.addr, &seg.bytes);
            }
            DataSource { mem }
        }
    }

    impl PageSource for DataSource {
        fn byte(&self, addr: u64) -> Option<u8> {
            Some(self.mem.read_u8(addr))
        }
    }

    /// Like [`DataSource`] but with a symbolic-tainted address range.
    struct TaintedSource {
        inner: DataSource,
        taint: std::ops::Range<u64>,
    }

    impl PageSource for TaintedSource {
        fn byte(&self, addr: u64) -> Option<u8> {
            if self.taint.contains(&addr) {
                None
            } else {
                self.inner.byte(addr)
            }
        }
    }

    fn entry_frames(prog: &Program) -> Vec<SegFrame> {
        let entry = prog.func(prog.entry);
        vec![SegFrame::new(prog.entry, 0, 0, entry.n_regs as usize, None)]
    }

    #[test]
    fn segment_runs_straight_line_to_the_halt_boundary() {
        let mut mb = ModuleBuilder::new();
        let buf = mb.data_zeroed(8);
        let main = mb.declare("main", 0);
        mb.define(main, move |b| {
            let x = b.const_(40);
            let y = b.add(x, 2u64);
            b.store_u8(buf, y);
            b.log_pc(7u64, 3u64);
            b.halt(y);
        });
        let prog = mb.finish("main").unwrap();
        let src = DataSource::of(&prog);
        let mut mem = SegMem::new(&src);
        let mut frames = entry_frames(&prog);
        let out = run_segment(&prog, &mut frames, &mut NoCallers, &mut mem, 1_000);
        assert_eq!(out.stop, SegStop::Event);
        assert_eq!(out.events, vec![SegEvent::LogPc(7, 3)]);
        assert!(out.steps >= 4);
        // Stopped *at* the halt terminator, which was not executed.
        let top = frames.last().unwrap();
        let blk = &prog.func(top.func).blocks[top.block];
        assert_eq!(top.ip, blk.insts.len());
        assert!(matches!(blk.term, Term::Halt { .. }));
        // The store shows up as a dirty byte, and its extract fold is in
        // the intern log.
        assert_eq!(mem.into_dirty(), vec![(buf, 42)]);
        assert!(out.interns.contains(&(8, 42)));
    }

    #[test]
    fn segment_stops_on_make_symbolic_without_executing_it() {
        let mut mb = ModuleBuilder::new();
        let buf = mb.data_zeroed(2);
        let name = mb.name_id("x");
        let main = mb.declare("main", 0);
        mb.define(main, move |b| {
            let a = b.const_(1);
            let c = b.add(a, 1u64);
            b.store_u8(buf, c);
            b.make_symbolic(buf, 2u64, name);
            b.halt(0u64);
        });
        let prog = mb.finish("main").unwrap();
        let src = DataSource::of(&prog);
        let mut mem = SegMem::new(&src);
        let mut frames = entry_frames(&prog);
        let out = run_segment(&prog, &mut frames, &mut NoCallers, &mut mem, 1_000);
        assert_eq!(out.stop, SegStop::Event);
        assert_eq!(out.steps, 3);
        let top = frames.last().unwrap();
        let inst = &prog.func(top.func).blocks[top.block].insts[top.ip];
        assert!(matches!(
            inst,
            Inst::Intrinsic {
                intr: Intrinsic::MakeSymbolic,
                ..
            }
        ));
    }

    #[test]
    fn segment_reports_fuel_exhaustion() {
        let mut mb = ModuleBuilder::new();
        let main = mb.declare("main", 0);
        mb.define(main, |b| {
            b.loop_(|_| {});
            b.halt(0u64);
        });
        let prog = mb.finish("main").unwrap();
        let src = DataSource::of(&prog);
        let mut mem = SegMem::new(&src);
        let mut frames = entry_frames(&prog);
        let out = run_segment(&prog, &mut frames, &mut NoCallers, &mut mem, 100);
        assert_eq!(out.stop, SegStop::OutOfFuel);
        assert_eq!(out.steps, 100);
    }

    #[test]
    fn segment_stops_on_tainted_load_before_the_load() {
        let mut mb = ModuleBuilder::new();
        let buf = mb.data_zeroed(4);
        let main = mb.declare("main", 0);
        mb.define(main, move |b| {
            let v = b.load_u8(buf + 1);
            b.halt(v);
        });
        let prog = mb.finish("main").unwrap();
        let src = TaintedSource {
            inner: DataSource::of(&prog),
            taint: buf + 1..buf + 2,
        };
        let mut mem = SegMem::new(&src);
        let mut frames = entry_frames(&prog);
        let out = run_segment(&prog, &mut frames, &mut NoCallers, &mut mem, 1_000);
        assert_eq!(out.stop, SegStop::TaintedLoad);
        assert_eq!(out.steps, 0);
        assert!(out.interns.is_empty(), "stopped loads log nothing");
        let top = frames.last().unwrap();
        assert!(matches!(
            prog.func(top.func).blocks[top.block].insts[top.ip],
            Inst::Load { .. }
        ));
        // A concrete overwrite un-taints the byte and the load proceeds.
        mem.write_u8(buf + 1, 9);
        let out = run_segment(&prog, &mut frames, &mut NoCallers, &mut mem, 1_000);
        assert_eq!(out.stop, SegStop::Event);
        assert_eq!(out.steps, 1);
        assert_eq!(frames.last().unwrap().regs[0], 9);
    }

    #[test]
    fn segment_copies_symbolic_tokens_through_calls_and_moves() {
        let mut mb = ModuleBuilder::new();
        let id = mb.declare("id", 1);
        mb.define(id, |b| {
            let p = b.param(0);
            b.ret(p);
        });
        let main = mb.declare("main", 0);
        mb.define(main, move |b| {
            let x = b.const_(5);
            let y = b.call(id, &[x.into()]);
            let z = b.add(y, 1u64);
            b.halt(z);
        });
        let prog = mb.finish("main").unwrap();
        let src = DataSource::of(&prog);
        let mut mem = SegMem::new(&src);
        let mut frames = entry_frames(&prog);
        // Plant a token in register 0 ahead of time and rewrite the script:
        // run only from the call onward by first letting Const execute.
        let out = run_segment(&prog, &mut frames, &mut NoCallers, &mut mem, 1);
        assert_eq!(out.stop, SegStop::OutOfFuel);
        let token = 0xdead_beef_u64;
        {
            let top = frames.last_mut().unwrap();
            top.regs[0] = token;
            top.set_sym(0, true);
        }
        let out = run_segment(&prog, &mut frames, &mut NoCallers, &mut mem, 1_000);
        // The token flows through call + ret untouched, then the add on it
        // stops the segment.
        assert_eq!(out.stop, SegStop::Boundary);
        let top = frames.last().unwrap();
        assert!(matches!(
            prog.func(top.func).blocks[top.block].insts[top.ip],
            Inst::Bin { .. }
        ));
        assert_eq!(top.regs[1], token);
        assert!(top.is_sym(1));
    }

    #[test]
    fn segment_intern_log_matches_the_symbolic_fold_sequence() {
        let mut mb = ModuleBuilder::new();
        let main = mb.declare("main", 0);
        mb.define(main, |b| {
            let x = b.const_(3);
            let c = b.ult(x, 10u64);
            b.if_else(c, |b| b.halt(1u64), |b| b.halt(0u64));
        });
        let prog = mb.finish("main").unwrap();
        let src = DataSource::of(&prog);
        let mut mem = SegMem::new(&src);
        let mut frames = entry_frames(&prog);
        let out = run_segment(&prog, &mut frames, &mut NoCallers, &mut mem, 1_000);
        assert_eq!(out.stop, SegStop::Event);
        // The predicate's folds land at both widths, and the branch's
        // truthiness test logs its zero/eq/ne pair. The log keeps only the
        // first occurrence of each pair — replaying a constant the pool has
        // already interned is a no-op — so the truthy triple's trailing
        // `(1, 1)` collapses into the earlier predicate fold. (The exact
        // end-to-end match against a real expression-pool transcript is
        // asserted in chef-symex's fast-forward tests.)
        assert!(out.interns.contains(&(1, 1)), "predicate fold at width 1");
        assert!(out.interns.contains(&(64, 1)), "widened predicate fold");
        let truthy_at = out.interns.windows(2).position(|w| w == [(64, 0), (1, 0)]);
        assert!(truthy_at.is_some(), "branch truthiness pair logged");
        let mut seen = std::collections::HashSet::new();
        assert!(
            out.interns.iter().all(|e| seen.insert(*e)),
            "the intern log must be duplicate-free: {:?}",
            out.interns
        );
    }
}
