//! Structured builder eDSL for LIR.
//!
//! Interpreters in this reproduction are "written in machine code" the way
//! CPython is written in C: via [`ModuleBuilder`] and [`FnBuilder`], which
//! provide structured control flow (`if_else`, `while_`, `switch`) that
//! lowers to plain blocks and branches. The symbolic executor only ever sees
//! the lowered form.

use std::collections::HashMap;

use crate::ir::{
    Block, DataSeg, FuncId, Function, Inst, Intrinsic, MemSize, Operand, Program, Reg, Term,
    DATA_BASE, HEAP_BASE, HEAP_PTR_ADDR,
};
use chef_solver::BinOp;

/// Builds a [`Program`] from declared and defined functions plus static data.
///
/// # Examples
///
/// ```
/// use chef_lir::{ModuleBuilder, BinOp};
/// let mut mb = ModuleBuilder::new();
/// let main = mb.declare("main", 0);
/// mb.define(main, |b| {
///     let x = b.const_(21);
///     let y = b.bin(BinOp::Add, x, x);
///     b.halt(y);
/// });
/// let prog = mb.finish("main").unwrap();
/// assert_eq!(prog.funcs.len(), 1);
/// ```
#[derive(Default)]
pub struct ModuleBuilder {
    funcs: Vec<Option<Function>>,
    sigs: Vec<(String, u32)>,
    func_ids: HashMap<String, FuncId>,
    names: Vec<String>,
    name_ids: HashMap<String, u64>,
    data: Vec<DataSeg>,
    next_data: u64,
}

impl ModuleBuilder {
    /// Creates an empty module.
    pub fn new() -> Self {
        ModuleBuilder {
            next_data: DATA_BASE,
            ..Default::default()
        }
    }

    /// Declares a function signature; the body is provided later with
    /// [`ModuleBuilder::define`]. Declaring before defining permits mutual
    /// recursion.
    pub fn declare(&mut self, name: &str, n_params: u32) -> FuncId {
        assert!(
            !self.func_ids.contains_key(name),
            "function {name} declared twice"
        );
        let id = FuncId(self.funcs.len() as u32);
        self.funcs.push(None);
        self.sigs.push((name.to_string(), n_params));
        self.func_ids.insert(name.to_string(), id);
        id
    }

    /// The id of a previously declared function.
    ///
    /// # Panics
    ///
    /// Panics if the function was never declared.
    pub fn func(&self, name: &str) -> FuncId {
        *self
            .func_ids
            .get(name)
            .unwrap_or_else(|| panic!("function {name} not declared"))
    }

    /// Defines the body of a declared function.
    ///
    /// If the builder's final block lacks a terminator, a `ret` (without
    /// value) is appended.
    pub fn define(&mut self, id: FuncId, build: impl FnOnce(&mut FnBuilder)) {
        let (name, n_params) = self.sigs[id.0 as usize].clone();
        assert!(
            self.funcs[id.0 as usize].is_none(),
            "function {name} defined twice"
        );
        let mut fb = FnBuilder::new(n_params);
        build(&mut fb);
        let f = fb.finish(name);
        self.funcs[id.0 as usize] = Some(f);
    }

    /// Interns a string in the name table, returning its id.
    pub fn name_id(&mut self, s: &str) -> u64 {
        if let Some(&id) = self.name_ids.get(s) {
            return id;
        }
        let id = self.names.len() as u64;
        self.names.push(s.to_string());
        self.name_ids.insert(s.to_string(), id);
        id
    }

    /// Places raw bytes in static data, returning their address.
    pub fn data_bytes(&mut self, bytes: &[u8]) -> u64 {
        let addr = self.next_data;
        self.data.push(DataSeg {
            addr,
            bytes: bytes.to_vec(),
        });
        self.next_data = (addr + bytes.len() as u64 + 7) & !7;
        addr
    }

    /// Allocates a zero-initialized static region of `len` bytes.
    pub fn data_zeroed(&mut self, len: u64) -> u64 {
        self.data_bytes(&vec![0u8; len as usize])
    }

    /// Allocates an 8-byte global initialized to `value`, returning its
    /// address.
    pub fn global_u64(&mut self, value: u64) -> u64 {
        self.data_bytes(&value.to_le_bytes())
    }

    /// Places a length-prefixed string (`u64` length + bytes) in static
    /// data, returning the address of the length word.
    pub fn data_str(&mut self, s: &str) -> u64 {
        let mut bytes = (s.len() as u64).to_le_bytes().to_vec();
        bytes.extend_from_slice(s.as_bytes());
        self.data_bytes(&bytes)
    }

    /// Finalizes the module with the named entry function.
    ///
    /// Installs the heap-bump pointer cell and validates the program.
    ///
    /// # Errors
    ///
    /// Returns validation errors (undefined functions, unterminated blocks,
    /// out-of-range references).
    pub fn finish(mut self, entry: &str) -> Result<Program, String> {
        let entry = *self
            .func_ids
            .get(entry)
            .ok_or_else(|| format!("entry function {entry} not declared"))?;
        let mut funcs = Vec::with_capacity(self.funcs.len());
        for (i, f) in self.funcs.into_iter().enumerate() {
            match f {
                Some(f) => funcs.push(f),
                None => {
                    return Err(format!(
                        "function {} declared but never defined",
                        self.sigs[i].0
                    ))
                }
            }
        }
        self.data.push(DataSeg {
            addr: HEAP_PTR_ADDR,
            bytes: HEAP_BASE.to_le_bytes().to_vec(),
        });
        let prog = Program {
            funcs,
            entry,
            data: self.data,
            names: self.names,
        };
        prog.validate()?;
        Ok(prog)
    }
}

struct LoopCtx {
    continue_to: usize,
    break_to: usize,
}

/// Builds one function with structured control flow.
///
/// Obtained through [`ModuleBuilder::define`]; see the module docs for the
/// overall flow. Registers are allocated with [`FnBuilder::reg`] or returned
/// by value-producing helpers; parameters occupy the first registers.
pub struct FnBuilder {
    blocks: Vec<Block>,
    cur: usize,
    terminated: bool,
    next_reg: u32,
    n_params: u32,
    loops: Vec<LoopCtx>,
}

impl FnBuilder {
    fn new(n_params: u32) -> Self {
        FnBuilder {
            blocks: vec![Block {
                insts: vec![],
                term: Term::Unterminated,
            }],
            cur: 0,
            terminated: false,
            next_reg: n_params,
            n_params,
            loops: Vec::new(),
        }
    }

    fn finish(mut self, name: String) -> Function {
        if !self.terminated {
            self.blocks[self.cur].term = Term::Ret(None);
        }
        // Terminate any dead blocks left over from unreachable-code recovery.
        for b in &mut self.blocks {
            if matches!(b.term, Term::Unterminated) {
                b.term = Term::Ret(None);
            }
        }
        Function {
            name,
            n_params: self.n_params,
            n_regs: self.next_reg.max(self.n_params),
            blocks: self.blocks,
        }
    }

    /// The `i`-th parameter register.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn param(&self, i: u32) -> Reg {
        assert!(i < self.n_params, "parameter {i} out of range");
        Reg(i)
    }

    /// Allocates a fresh register.
    pub fn reg(&mut self) -> Reg {
        let r = Reg(self.next_reg);
        self.next_reg += 1;
        r
    }

    fn emit(&mut self, inst: Inst) {
        if self.terminated {
            // Unreachable code after an early return/break: park it in a
            // fresh dead block so construction still succeeds.
            self.blocks.push(Block {
                insts: vec![],
                term: Term::Unterminated,
            });
            self.cur = self.blocks.len() - 1;
            self.terminated = false;
        }
        self.blocks[self.cur].insts.push(inst);
    }

    fn terminate(&mut self, term: Term) {
        if self.terminated {
            self.blocks.push(Block {
                insts: vec![],
                term: Term::Unterminated,
            });
            self.cur = self.blocks.len() - 1;
        }
        self.blocks[self.cur].term = term;
        self.terminated = true;
    }

    fn new_block(&mut self) -> usize {
        self.blocks.push(Block {
            insts: vec![],
            term: Term::Unterminated,
        });
        self.blocks.len() - 1
    }

    fn switch_to(&mut self, b: usize) {
        self.cur = b;
        self.terminated = false;
    }

    // ----- straight-line values -----

    /// `dst = value` into a fresh register.
    pub fn const_(&mut self, value: u64) -> Reg {
        let dst = self.reg();
        self.emit(Inst::Const { dst, value });
        dst
    }

    /// Copies `src` into a fresh register.
    pub fn mov(&mut self, src: impl Into<Operand>) -> Reg {
        let dst = self.reg();
        self.emit(Inst::Mov {
            dst,
            src: src.into(),
        });
        dst
    }

    /// Copies `src` into an existing register (mutation).
    pub fn set(&mut self, dst: Reg, src: impl Into<Operand>) {
        self.emit(Inst::Mov {
            dst,
            src: src.into(),
        });
    }

    /// Binary operation into a fresh register.
    pub fn bin(&mut self, op: BinOp, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        let dst = self.reg();
        self.emit(Inst::Bin {
            op,
            dst,
            a: a.into(),
            b: b.into(),
        });
        dst
    }

    /// Bitwise complement into a fresh register.
    pub fn not(&mut self, a: impl Into<Operand>) -> Reg {
        let dst = self.reg();
        self.emit(Inst::Not { dst, a: a.into() });
        dst
    }

    /// `cond != 0 ? t : f` into a fresh register (no control flow).
    pub fn select(
        &mut self,
        cond: impl Into<Operand>,
        t: impl Into<Operand>,
        f: impl Into<Operand>,
    ) -> Reg {
        let dst = self.reg();
        self.emit(Inst::Select {
            dst,
            cond: cond.into(),
            t: t.into(),
            f: f.into(),
        });
        dst
    }

    /// Logical negation: 1 if `a == 0`, else 0.
    pub fn lnot(&mut self, a: impl Into<Operand>) -> Reg {
        self.bin(BinOp::Eq, a, 0u64)
    }

    // Arithmetic / logic conveniences.
    /// `a + b`.
    pub fn add(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.bin(BinOp::Add, a, b)
    }
    /// `a - b`.
    pub fn sub(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.bin(BinOp::Sub, a, b)
    }
    /// `a * b`.
    pub fn mul(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.bin(BinOp::Mul, a, b)
    }
    /// `a / b` unsigned (all-ones on division by zero).
    pub fn udiv(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.bin(BinOp::UDiv, a, b)
    }
    /// `a % b` unsigned (identity on modulo zero).
    pub fn urem(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.bin(BinOp::URem, a, b)
    }
    /// Bitwise and.
    pub fn and(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.bin(BinOp::And, a, b)
    }
    /// Bitwise or.
    pub fn or(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.bin(BinOp::Or, a, b)
    }
    /// Bitwise xor.
    pub fn xor(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.bin(BinOp::Xor, a, b)
    }
    /// `a == b` as 0/1.
    pub fn eq(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.bin(BinOp::Eq, a, b)
    }
    /// `a != b` as 0/1.
    pub fn ne(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        let e = self.eq(a, b);
        self.lnot(e)
    }
    /// `a < b` unsigned, as 0/1.
    pub fn ult(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.bin(BinOp::Ult, a, b)
    }
    /// `a <= b` unsigned, as 0/1.
    pub fn ule(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.bin(BinOp::Ule, a, b)
    }
    /// `a < b` signed, as 0/1.
    pub fn slt(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.bin(BinOp::Slt, a, b)
    }
    /// `a <= b` signed, as 0/1.
    pub fn sle(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.bin(BinOp::Sle, a, b)
    }
    /// `a << b`.
    pub fn shl(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.bin(BinOp::Shl, a, b)
    }
    /// `a >> b` logical.
    pub fn lshr(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.bin(BinOp::LShr, a, b)
    }

    // ----- memory -----

    /// Loads a zero-extended byte.
    pub fn load_u8(&mut self, addr: impl Into<Operand>) -> Reg {
        let dst = self.reg();
        self.emit(Inst::Load {
            dst,
            addr: addr.into(),
            size: MemSize::U8,
        });
        dst
    }

    /// Loads a little-endian u64.
    pub fn load_u64(&mut self, addr: impl Into<Operand>) -> Reg {
        let dst = self.reg();
        self.emit(Inst::Load {
            dst,
            addr: addr.into(),
            size: MemSize::U64,
        });
        dst
    }

    /// Stores the low byte of `value`.
    pub fn store_u8(&mut self, addr: impl Into<Operand>, value: impl Into<Operand>) {
        self.emit(Inst::Store {
            addr: addr.into(),
            value: value.into(),
            size: MemSize::U8,
        });
    }

    /// Stores a little-endian u64.
    pub fn store_u64(&mut self, addr: impl Into<Operand>, value: impl Into<Operand>) {
        self.emit(Inst::Store {
            addr: addr.into(),
            value: value.into(),
            size: MemSize::U64,
        });
    }

    // ----- calls and intrinsics -----

    /// Calls a function, returning its value in a fresh register.
    pub fn call(&mut self, func: FuncId, args: &[Operand]) -> Reg {
        let dst = self.reg();
        self.emit(Inst::Call {
            dst: Some(dst),
            func,
            args: args.to_vec(),
        });
        dst
    }

    /// Calls a function, discarding any return value.
    pub fn call_void(&mut self, func: FuncId, args: &[Operand]) {
        self.emit(Inst::Call {
            dst: None,
            func,
            args: args.to_vec(),
        });
    }

    /// `make_symbolic(addr, len, name_id)` — Table 1 of the paper.
    pub fn make_symbolic(
        &mut self,
        addr: impl Into<Operand>,
        len: impl Into<Operand>,
        name_id: u64,
    ) {
        self.emit(Inst::Intrinsic {
            dst: None,
            intr: Intrinsic::MakeSymbolic,
            args: vec![addr.into(), len.into(), Operand::Imm(name_id)],
        });
    }

    /// `log_pc(pc, opcode)` — the HLPC instrumentation call (§4.1).
    pub fn log_pc(&mut self, pc: impl Into<Operand>, opcode: impl Into<Operand>) {
        self.emit(Inst::Intrinsic {
            dst: None,
            intr: Intrinsic::LogPc,
            args: vec![pc.into(), opcode.into()],
        });
    }

    /// `assume(cond)` — constrain the current path.
    pub fn assume(&mut self, cond: impl Into<Operand>) {
        self.emit(Inst::Intrinsic {
            dst: None,
            intr: Intrinsic::Assume,
            args: vec![cond.into()],
        });
    }

    /// `is_symbolic(value)` — 1 if the value is symbolic on this path.
    pub fn is_symbolic(&mut self, value: impl Into<Operand>) -> Reg {
        let dst = self.reg();
        self.emit(Inst::Intrinsic {
            dst: Some(dst),
            intr: Intrinsic::IsSymbolic,
            args: vec![value.into()],
        });
        dst
    }

    /// `upper_bound(value)` — maximum feasible value on this path.
    pub fn upper_bound(&mut self, value: impl Into<Operand>) -> Reg {
        let dst = self.reg();
        self.emit(Inst::Intrinsic {
            dst: Some(dst),
            intr: Intrinsic::UpperBound,
            args: vec![value.into()],
        });
        dst
    }

    /// `concretize(value)` — bind the value to one feasible concrete value.
    pub fn concretize(&mut self, value: impl Into<Operand>) -> Reg {
        let dst = self.reg();
        self.emit(Inst::Intrinsic {
            dst: Some(dst),
            intr: Intrinsic::Concretize,
            args: vec![value.into()],
        });
        dst
    }

    /// `end_symbolic(status)` — terminate this path gracefully.
    pub fn end_symbolic(&mut self, status: impl Into<Operand>) {
        self.emit(Inst::Intrinsic {
            dst: None,
            intr: Intrinsic::EndSymbolic,
            args: vec![status.into()],
        });
    }

    /// Crash the interpreter (non-graceful termination).
    pub fn abort(&mut self, code: impl Into<Operand>) {
        self.emit(Inst::Intrinsic {
            dst: None,
            intr: Intrinsic::Abort,
            args: vec![code.into()],
        });
    }

    /// Report a structured event `(kind, a, b)` to the host.
    pub fn trace_event(&mut self, kind: u64, a: impl Into<Operand>, b: impl Into<Operand>) {
        self.emit(Inst::Intrinsic {
            dst: None,
            intr: Intrinsic::TraceEvent,
            args: vec![Operand::Imm(kind), a.into(), b.into()],
        });
    }

    /// Debug-print `len` bytes at `ptr` when running on the concrete VM.
    pub fn debug_print(&mut self, ptr: impl Into<Operand>, len: impl Into<Operand>) {
        self.emit(Inst::Intrinsic {
            dst: None,
            intr: Intrinsic::DebugPrint,
            args: vec![ptr.into(), len.into()],
        });
    }

    // ----- terminators and structured control flow -----

    /// Return a value.
    pub fn ret(&mut self, value: impl Into<Operand>) {
        self.terminate(Term::Ret(Some(value.into())));
    }

    /// Return without a value.
    pub fn ret_void(&mut self) {
        self.terminate(Term::Ret(None));
    }

    /// Stop the program with an exit code.
    pub fn halt(&mut self, code: impl Into<Operand>) {
        self.terminate(Term::Halt { code: code.into() });
    }

    /// `if cond != 0 { then_f() } else { else_f() }`.
    pub fn if_else(
        &mut self,
        cond: impl Into<Operand>,
        then_f: impl FnOnce(&mut Self),
        else_f: impl FnOnce(&mut Self),
    ) {
        let tb = self.new_block();
        let eb = self.new_block();
        let jb = self.new_block();
        self.terminate(Term::Branch {
            cond: cond.into(),
            then_: crate::ir::BlockId(tb as u32),
            else_: crate::ir::BlockId(eb as u32),
        });
        self.switch_to(tb);
        then_f(self);
        if !self.terminated {
            self.terminate(Term::Jump(crate::ir::BlockId(jb as u32)));
        }
        self.switch_to(eb);
        else_f(self);
        if !self.terminated {
            self.terminate(Term::Jump(crate::ir::BlockId(jb as u32)));
        }
        self.switch_to(jb);
    }

    /// `if cond != 0 { then_f() }`.
    pub fn if_(&mut self, cond: impl Into<Operand>, then_f: impl FnOnce(&mut Self)) {
        self.if_else(cond, then_f, |_| {});
    }

    /// `while cond_f() != 0 { body_f() }`. `break_`/`continue_` target this
    /// loop while inside `body_f`.
    pub fn while_(
        &mut self,
        cond_f: impl FnOnce(&mut Self) -> Reg,
        body_f: impl FnOnce(&mut Self),
    ) {
        let cb = self.new_block();
        self.terminate(Term::Jump(crate::ir::BlockId(cb as u32)));
        self.switch_to(cb);
        let cond = cond_f(self);
        let bb = self.new_block();
        let xb = self.new_block();
        self.terminate(Term::Branch {
            cond: cond.into(),
            then_: crate::ir::BlockId(bb as u32),
            else_: crate::ir::BlockId(xb as u32),
        });
        self.loops.push(LoopCtx {
            continue_to: cb,
            break_to: xb,
        });
        self.switch_to(bb);
        body_f(self);
        if !self.terminated {
            self.terminate(Term::Jump(crate::ir::BlockId(cb as u32)));
        }
        self.loops.pop();
        self.switch_to(xb);
    }

    /// Infinite loop; exit with [`FnBuilder::break_`].
    pub fn loop_(&mut self, body_f: impl FnOnce(&mut Self)) {
        let bb = self.new_block();
        let xb = self.new_block();
        self.terminate(Term::Jump(crate::ir::BlockId(bb as u32)));
        self.loops.push(LoopCtx {
            continue_to: bb,
            break_to: xb,
        });
        self.switch_to(bb);
        body_f(self);
        if !self.terminated {
            self.terminate(Term::Jump(crate::ir::BlockId(bb as u32)));
        }
        self.loops.pop();
        self.switch_to(xb);
    }

    /// Break out of the innermost loop.
    ///
    /// # Panics
    ///
    /// Panics if not inside a loop.
    pub fn break_(&mut self) {
        let target = self.loops.last().expect("break_ outside a loop").break_to;
        self.terminate(Term::Jump(crate::ir::BlockId(target as u32)));
    }

    /// Continue the innermost loop.
    ///
    /// # Panics
    ///
    /// Panics if not inside a loop.
    pub fn continue_(&mut self) {
        let target = self
            .loops
            .last()
            .expect("continue_ outside a loop")
            .continue_to;
        self.terminate(Term::Jump(crate::ir::BlockId(target as u32)));
    }

    /// Multi-way dispatch: for each value in `cases`, `case_f(self, value)`
    /// builds that arm; `default_f` builds the default arm. This is the
    /// interpreter-loop `switch` from §4.1.
    pub fn switch(
        &mut self,
        on: impl Into<Operand>,
        cases: &[u64],
        mut case_f: impl FnMut(&mut Self, u64),
        default_f: impl FnOnce(&mut Self),
    ) {
        let case_blocks: Vec<usize> = cases.iter().map(|_| self.new_block()).collect();
        let db = self.new_block();
        let jb = self.new_block();
        self.terminate(Term::Switch {
            on: on.into(),
            cases: cases
                .iter()
                .zip(&case_blocks)
                .map(|(&v, &b)| (v, crate::ir::BlockId(b as u32)))
                .collect(),
            default: crate::ir::BlockId(db as u32),
        });
        for (&v, &b) in cases.iter().zip(&case_blocks) {
            self.switch_to(b);
            case_f(self, v);
            if !self.terminated {
                self.terminate(Term::Jump(crate::ir::BlockId(jb as u32)));
            }
        }
        self.switch_to(db);
        default_f(self);
        if !self.terminated {
            self.terminate(Term::Jump(crate::ir::BlockId(jb as u32)));
        }
        self.switch_to(jb);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concrete::{run_concrete, ConcreteStatus};
    use crate::ir::InputMap;

    fn run_main(build: impl FnOnce(&mut FnBuilder)) -> ConcreteStatus {
        let mut mb = ModuleBuilder::new();
        let main = mb.declare("main", 0);
        mb.define(main, build);
        let prog = mb.finish("main").unwrap();
        run_concrete(&prog, &InputMap::new(), 1_000_000).status
    }

    #[test]
    fn arithmetic_program() {
        let st = run_main(|b| {
            let x = b.const_(6);
            let y = b.mul(x, 7u64);
            b.halt(y);
        });
        assert_eq!(st, ConcreteStatus::Halted(42));
    }

    #[test]
    fn if_else_takes_right_arm() {
        let st = run_main(|b| {
            let x = b.const_(5);
            let c = b.ult(x, 10u64);
            let out = b.reg();
            b.if_else(c, |b| b.set(out, 1u64), |b| b.set(out, 2u64));
            b.halt(out);
        });
        assert_eq!(st, ConcreteStatus::Halted(1));
    }

    #[test]
    fn while_loop_sums() {
        let st = run_main(|b| {
            let i = b.const_(0);
            let acc = b.const_(0);
            b.while_(
                |b| b.ult(i, 10u64),
                |b| {
                    let next = b.add(acc, i);
                    b.set(acc, next);
                    let ni = b.add(i, 1u64);
                    b.set(i, ni);
                },
            );
            b.halt(acc);
        });
        assert_eq!(st, ConcreteStatus::Halted(45));
    }

    #[test]
    fn break_and_continue() {
        let st = run_main(|b| {
            let i = b.const_(0);
            let acc = b.const_(0);
            b.loop_(|b| {
                let ni = b.add(i, 1u64);
                b.set(i, ni);
                let done = b.ult(10u64, i);
                b.if_(done, |b| b.break_());
                let even = b.urem(i, 2u64);
                let is_odd = b.ne(even, 0u64);
                b.if_(is_odd, |b| b.continue_());
                let next = b.add(acc, i);
                b.set(acc, next);
            });
            b.halt(acc); // 2+4+6+8+10 = 30
        });
        assert_eq!(st, ConcreteStatus::Halted(30));
    }

    #[test]
    fn switch_dispatch() {
        let st = run_main(|b| {
            let x = b.const_(2);
            let out = b.reg();
            b.switch(
                x,
                &[1, 2, 3],
                |b, v| b.set(out, v * 100),
                |b| b.set(out, 999u64),
            );
            b.halt(out);
        });
        assert_eq!(st, ConcreteStatus::Halted(200));
    }

    #[test]
    fn function_calls_pass_arguments() {
        let mut mb = ModuleBuilder::new();
        let double = mb.declare("double", 1);
        let main = mb.declare("main", 0);
        mb.define(double, |b| {
            let p = b.param(0);
            let r = b.add(p, p);
            b.ret(r);
        });
        mb.define(main, |b| {
            let x = b.const_(21);
            let y = b.call(double, &[x.into()]);
            b.halt(y);
        });
        let prog = mb.finish("main").unwrap();
        let out = run_concrete(&prog, &InputMap::new(), 1_000_000);
        assert_eq!(out.status, ConcreteStatus::Halted(42));
    }

    #[test]
    fn memory_roundtrip() {
        let mut mb = ModuleBuilder::new();
        let g = mb.global_u64(0);
        let main = mb.declare("main", 0);
        mb.define(main, |b| {
            b.store_u64(g, 0xdead_beefu64);
            let v = b.load_u64(g);
            let lo = b.and(v, 0xffu64);
            b.halt(lo);
        });
        let prog = mb.finish("main").unwrap();
        let out = run_concrete(&prog, &InputMap::new(), 1_000_000);
        assert_eq!(out.status, ConcreteStatus::Halted(0xef));
    }

    #[test]
    fn recursion_fibonacci() {
        let mut mb = ModuleBuilder::new();
        let fib = mb.declare("fib", 1);
        let main = mb.declare("main", 0);
        mb.define(fib, |b| {
            let n = b.param(0);
            let small = b.ult(n, 2u64);
            b.if_(small, |b| b.ret(n));
            let n1 = b.sub(n, 1u64);
            let n2 = b.sub(n, 2u64);
            let a = b.call(fib, &[n1.into()]);
            let c = b.call(fib, &[n2.into()]);
            let s = b.add(a, c);
            b.ret(s);
        });
        mb.define(main, |b| {
            let n = b.const_(10);
            let r = b.call(fib, &[n.into()]);
            b.halt(r);
        });
        let prog = mb.finish("main").unwrap();
        let out = run_concrete(&prog, &InputMap::new(), 10_000_000);
        assert_eq!(out.status, ConcreteStatus::Halted(55));
    }

    #[test]
    fn undefined_function_is_error() {
        let mut mb = ModuleBuilder::new();
        mb.declare("main", 0);
        let mb2 = {
            let mut m = ModuleBuilder::new();
            m.declare("main", 0);
            m
        };
        assert!(mb2.finish("main").is_err());
        let _ = mb;
    }
}
