//! Copy-on-write symbolic memory.
//!
//! Guest memory maps byte addresses to 8-bit expressions. Pages are shared
//! between forked states via `Arc` and cloned lazily on write, which keeps
//! state forking cheap — the property that makes S2E-style per-branch
//! forking viable in the paper.

use std::collections::HashMap;
use std::sync::Arc;

use chef_solver::{ExprId, ExprPool};

const PAGE_BITS: u64 = 10;
const PAGE_SIZE: usize = 1 << PAGE_BITS;

#[derive(Clone)]
struct Page {
    bytes: [ExprId; PAGE_SIZE],
}

/// Byte-addressable symbolic memory with copy-on-write pages.
///
/// Unmapped bytes read as the zero-byte expression. Cloning a `SymMem` is
/// O(pages) pointer copies; mutation copies only the touched page.
#[derive(Clone)]
pub struct SymMem {
    pages: HashMap<u64, Arc<Page>>,
    zero_byte: ExprId,
}

impl SymMem {
    /// Creates empty memory; `pool` is used to intern the zero byte.
    pub fn new(pool: &mut ExprPool) -> Self {
        SymMem {
            pages: HashMap::new(),
            zero_byte: pool.constant(8, 0),
        }
    }

    /// Reads the 8-bit expression at `addr`.
    pub fn read_u8(&self, addr: u64) -> ExprId {
        match self.pages.get(&(addr >> PAGE_BITS)) {
            Some(p) => p.bytes[(addr & (PAGE_SIZE as u64 - 1)) as usize],
            None => self.zero_byte,
        }
    }

    /// Writes an 8-bit expression at `addr`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `value` does not have width 8.
    pub fn write_u8(&mut self, pool: &ExprPool, addr: u64, value: ExprId) {
        debug_assert_eq!(pool.width(value), 8, "memory cells are bytes");
        let zero = self.zero_byte;
        let page = self.pages.entry(addr >> PAGE_BITS).or_insert_with(|| {
            Arc::new(Page {
                bytes: [zero; PAGE_SIZE],
            })
        });
        Arc::make_mut(page).bytes[(addr & (PAGE_SIZE as u64 - 1)) as usize] = value;
    }

    /// Reads a little-endian 64-bit expression (concatenation of 8 bytes;
    /// folds to a constant when all bytes are concrete).
    pub fn read_u64(&self, pool: &mut ExprPool, addr: u64) -> ExprId {
        let mut acc = self.read_u8(addr);
        for i in 1..8 {
            let b = self.read_u8(addr.wrapping_add(i));
            acc = pool.concat(b, acc);
        }
        acc
    }

    /// Writes a 64-bit expression as 8 little-endian bytes.
    pub fn write_u64(&mut self, pool: &mut ExprPool, addr: u64, value: ExprId) {
        debug_assert_eq!(pool.width(value), 64);
        for i in 0..8 {
            let lo = (i * 8) as u8;
            let byte = pool.extract(lo + 7, lo, value);
            self.write_u8(pool, addr.wrapping_add(i), byte);
        }
    }

    /// Writes concrete bytes (used for data segments and inputs).
    pub fn write_bytes(&mut self, pool: &mut ExprPool, addr: u64, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            let e = pool.constant(8, b as u64);
            self.write_u8(pool, addr.wrapping_add(i as u64), e);
        }
    }

    /// Number of materialized pages (diagnostics).
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Bytes per page — the fixed page payload size snapshots serialize.
    pub const PAGE_BYTES: usize = PAGE_SIZE;

    /// Materialized pages as `(page_index, bytes)`, ascending by index —
    /// the deterministic form [`crate::Snapshot`] serializes.
    pub fn snapshot_pages(&self) -> Vec<(u64, Vec<ExprId>)> {
        let mut out: Vec<(u64, Vec<ExprId>)> = self
            .pages
            .iter()
            .map(|(k, p)| (*k, p.bytes.to_vec()))
            .collect();
        out.sort_unstable_by_key(|(k, _)| *k);
        out
    }

    /// Rebuilds memory from serialized pages. Returns `None` if any page
    /// does not hold exactly [`SymMem::PAGE_BYTES`] entries.
    pub fn from_pages(pool: &mut ExprPool, pages: &[(u64, Vec<ExprId>)]) -> Option<Self> {
        let mut mem = SymMem::new(pool);
        for (k, bytes) in pages {
            let cells: [ExprId; PAGE_SIZE] = bytes.as_slice().try_into().ok()?;
            mem.pages.insert(*k, Arc::new(Page { bytes: cells }));
        }
        Some(mem)
    }
}

impl std::fmt::Debug for SymMem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SymMem")
            .field("pages", &self.pages.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmapped_reads_zero() {
        let mut pool = ExprPool::new();
        let m = SymMem::new(&mut pool);
        let z = m.read_u8(0x1234);
        assert_eq!(pool.as_const(z), Some(0));
    }

    #[test]
    fn u64_roundtrip_folds_to_constant() {
        let mut pool = ExprPool::new();
        let mut m = SymMem::new(&mut pool);
        let v = pool.constant(64, 0xdead_beef_cafe_f00d);
        m.write_u64(&mut pool, 64, v);
        let r = m.read_u64(&mut pool, 64);
        assert_eq!(pool.as_const(r), Some(0xdead_beef_cafe_f00d));
    }

    #[test]
    fn cow_isolation_between_clones() {
        let mut pool = ExprPool::new();
        let mut a = SymMem::new(&mut pool);
        a.write_bytes(&mut pool, 0, b"hello");
        let mut b = a.clone();
        let x = pool.constant(8, b'X' as u64);
        b.write_u8(&pool, 0, x);
        assert_eq!(pool.as_const(a.read_u8(0)), Some(b'h' as u64));
        assert_eq!(pool.as_const(b.read_u8(0)), Some(b'X' as u64));
    }

    #[test]
    fn symbolic_bytes_stay_symbolic() {
        let mut pool = ExprPool::new();
        let mut m = SymMem::new(&mut pool);
        let v = pool.fresh_var("b", 8);
        m.write_u8(&pool, 10, v);
        assert_eq!(m.read_u8(10), v);
        let wide = m.read_u64(&mut pool, 10);
        assert!(pool.as_const(wide).is_none());
    }

    #[test]
    fn cross_page_u64() {
        let mut pool = ExprPool::new();
        let mut m = SymMem::new(&mut pool);
        let addr = PAGE_SIZE as u64 - 3;
        let v = pool.constant(64, 0x1122_3344_5566_7788);
        m.write_u64(&mut pool, addr, v);
        let r = m.read_u64(&mut pool, addr);
        assert_eq!(pool.as_const(r), Some(0x1122_3344_5566_7788));
    }
}
