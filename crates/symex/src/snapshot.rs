//! Fork-point snapshots: a serializable image of a [`State`].
//!
//! Prefix-replay state shipping re-executes the interpreter prologue —
//! every low-level instruction from the program entry to the symbolic fork
//! point — once per shipped seed. For real interpreters that prologue is
//! thousands of instructions of entirely deterministic setup. The paper's
//! systems avoid this with VM snapshots taken at the fork point; this
//! module is that discipline for our stack: a [`Snapshot`] is a compact,
//! deterministic, pool-independent serialization of a state captured right
//! after `make_symbolic`, and [`Snapshot::restore`] re-materializes it into
//! any [`chef_solver::ExprPool`] so replay can start at instruction ~N
//! instead of 0.
//!
//! # What is captured
//!
//! Everything that defines the state semantically — the call stack (frames,
//! register files), the materialized memory pages, the path condition, the
//! symbolic input table, and the recorded event trace — plus the *entire*
//! expression-pool node table in creation order. Serializing the whole
//! table rather than just the reachable slice is deliberate: the prologue's
//! folded-away intermediates occupy id slots, and ids decide
//! commutative-operand canonicalization for everything built later.
//!
//! # Determinism contract
//!
//! The prologue is deterministic, so the pool at the fork point is a pure
//! function of the program — and the node table is its creation-order
//! transcript. Restore replays that transcript through the same
//! canonicalizing constructors that produced it (every interned node is a
//! fixed point of its constructor), declaring variables at their original
//! positions. Into a fresh pool this reproduces the pool *identically*,
//! ids included; into a pool that has already explored, it interns exactly
//! the node sequence a full prefix replay of the prologue would have
//! interned, in the same order. Either way a restored state is
//! structurally indistinguishable from its replayed-from-zero twin, and
//! byte-identical canonical test sets follow. Two engines executing the
//! same program capture byte-identical snapshots with equal fingerprints.
//!
//! # Fallback
//!
//! A snapshot is an accelerator, never a requirement: shipped seeds keep
//! their full decision prefix, so a missing, corrupt, or non-validating
//! snapshot simply drops the consumer back to replay-from-instruction-0
//! (which doubles as the equivalence oracle in tests).

use chef_lir::{FuncId, Reg};
use chef_solver::{BinOp, ExprId, ExprPool, Node, VarId};

use crate::mem::SymMem;
use crate::state::{Frame, State, StateId, SymInput};

/// A serialized expression node. Child references are indices into the
/// snapshot's own node table and always point at earlier entries.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum SnapNode {
    /// Constant with the low `width` bits of `bits` significant.
    Const {
        /// Width in bits (1..=64).
        width: u8,
        /// Constant bits.
        bits: u64,
    },
    /// Symbolic variable, as an index into [`Snapshot::vars`].
    Var {
        /// Variable table index.
        var: u32,
    },
    /// Bitwise complement.
    Not {
        /// Operand node index.
        a: u32,
    },
    /// Binary operation; `op` is a [`BinOp`] code (see [`binop_code`]).
    Bin {
        /// Operator code.
        op: u8,
        /// Left operand node index.
        a: u32,
        /// Right operand node index.
        b: u32,
    },
    /// If-then-else on a width-1 condition.
    Ite {
        /// Condition node index.
        cond: u32,
        /// Then node index.
        t: u32,
        /// Else node index.
        f: u32,
    },
    /// Bit slice `[hi:lo]` inclusive.
    Extract {
        /// High bit (inclusive).
        hi: u8,
        /// Low bit (inclusive).
        lo: u8,
        /// Operand node index.
        a: u32,
    },
    /// Zero- or sign-extension to `width`.
    Ext {
        /// Sign-extension if true.
        signed: bool,
        /// Result width in bits.
        width: u8,
        /// Operand node index.
        a: u32,
    },
    /// Concatenation: `a` high bits, `b` low bits.
    Concat {
        /// High operand node index.
        a: u32,
        /// Low operand node index.
        b: u32,
    },
}

/// A serialized call frame.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SnapFrame {
    /// Function id.
    pub func: u32,
    /// Current basic block.
    pub block: u32,
    /// Next instruction index within the block.
    pub ip: u32,
    /// Register file as node-table indices.
    pub regs: Vec<u32>,
    /// Caller register receiving the return value.
    pub ret_dst: Option<u32>,
}

/// A portable, deterministic serialization of a symbolic execution state,
/// captured at the symbolic fork point (right after `make_symbolic`).
///
/// See the [module docs](self) for the capture/restore/determinism
/// contract. Wire framing lives in `chef_core::wire` (a `Snapshot` frame
/// is the payload of `snapshot.bin` in a `chef-serve` corpus).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Snapshot {
    /// Content fingerprint (FNV-1a over every other field). Snapshot
    /// references in shipped seeds and checkpoints use this as identity.
    pub fingerprint: u64,
    /// Declared symbolic variables, in declaration order: `(name, width)`.
    pub vars: Vec<(String, u8)>,
    /// The full expression-pool node table in creation order (a
    /// topological order by construction: children are interned before
    /// parents). `Var` nodes appear at their declaration positions, in
    /// variable-table order.
    pub nodes: Vec<SnapNode>,
    /// Call stack; the last frame is active.
    pub frames: Vec<SnapFrame>,
    /// Materialized memory pages: `(page_index, byte node indices)`,
    /// ascending by page index; every page holds exactly
    /// [`SymMem::PAGE_BYTES`] entries.
    pub pages: Vec<(u64, Vec<u32>)>,
    /// Path condition as node indices.
    pub path: Vec<u32>,
    /// Symbolic inputs: `(name, variable table indices)` per buffer.
    pub inputs: Vec<(String, Vec<u32>)>,
    /// Recorded nondeterministic events up to the capture point. This is
    /// the prefix every seed shipped against this snapshot starts with;
    /// the seed's remaining choices are the suffix replayed after restore.
    pub trace: Vec<u64>,
    /// High-level `(pc, opcode)` events logged before the capture point.
    /// Engines replay these into their high-level tree/CFG when injecting
    /// a restored state, so high-level path identities match full prefix
    /// replay exactly.
    pub hl_events: Vec<(u64, u64)>,
    /// High-level program counter at capture.
    pub hlpc: u64,
    /// High-level opcode at capture.
    pub hl_opcode: u64,
    /// High-level instructions executed at capture.
    pub hl_len: u64,
    /// Low-level instructions the captured state had executed — exactly
    /// the per-restore replay work a snapshot saves.
    pub ll_steps: u64,
}

/// Stable code of a [`BinOp`] for serialization.
pub fn binop_code(op: BinOp) -> u8 {
    match op {
        BinOp::Add => 0,
        BinOp::Sub => 1,
        BinOp::Mul => 2,
        BinOp::UDiv => 3,
        BinOp::URem => 4,
        BinOp::And => 5,
        BinOp::Or => 6,
        BinOp::Xor => 7,
        BinOp::Shl => 8,
        BinOp::LShr => 9,
        BinOp::AShr => 10,
        BinOp::Eq => 11,
        BinOp::Ult => 12,
        BinOp::Slt => 13,
        BinOp::Ule => 14,
        BinOp::Sle => 15,
    }
}

/// Inverse of [`binop_code`].
pub fn binop_from_code(code: u8) -> Option<BinOp> {
    Some(match code {
        0 => BinOp::Add,
        1 => BinOp::Sub,
        2 => BinOp::Mul,
        3 => BinOp::UDiv,
        4 => BinOp::URem,
        5 => BinOp::And,
        6 => BinOp::Or,
        7 => BinOp::Xor,
        8 => BinOp::Shl,
        9 => BinOp::LShr,
        10 => BinOp::AShr,
        11 => BinOp::Eq,
        12 => BinOp::Ult,
        13 => BinOp::Slt,
        14 => BinOp::Ule,
        15 => BinOp::Sle,
        _ => return None,
    })
}

impl Snapshot {
    /// Captures `state` against its pool.
    ///
    /// The caller is responsible for picking a sound capture point: every
    /// state the consumer will ship against this snapshot must descend
    /// from it ([`crate::Executor`] captures right after `make_symbolic`,
    /// before the first fork).
    pub fn capture(state: &State, pool: &ExprPool) -> Snapshot {
        // The whole node table, in creation order. Node references inside
        // the snapshot are then simply raw pool indices, and children
        // always precede parents (hash-consing interns bottom-up).
        let nodes: Vec<SnapNode> = (0..pool.len())
            .map(|i| match *pool.node(pool.id_at(i)) {
                Node::Const { width, bits } => SnapNode::Const { width, bits },
                Node::Var { var, .. } => SnapNode::Var { var: var.0 },
                Node::Not { a } => SnapNode::Not { a: a.raw() },
                Node::Bin { op, a, b } => SnapNode::Bin {
                    op: binop_code(op),
                    a: a.raw(),
                    b: b.raw(),
                },
                Node::Ite { cond, t, f } => SnapNode::Ite {
                    cond: cond.raw(),
                    t: t.raw(),
                    f: f.raw(),
                },
                Node::Extract { hi, lo, a } => SnapNode::Extract { hi, lo, a: a.raw() },
                Node::Ext { signed, width, a } => SnapNode::Ext {
                    signed,
                    width,
                    a: a.raw(),
                },
                Node::Concat { a, b } => SnapNode::Concat {
                    a: a.raw(),
                    b: b.raw(),
                },
            })
            .collect();
        let mut snap = Snapshot {
            fingerprint: 0,
            vars: pool
                .vars()
                .iter()
                .map(|v| (v.name.clone(), v.width))
                .collect(),
            nodes,
            frames: state
                .frames
                .iter()
                .map(|f| SnapFrame {
                    func: f.func.0,
                    block: f.block as u32,
                    ip: f.ip as u32,
                    regs: f.regs.iter().map(|r| r.raw()).collect(),
                    ret_dst: f.ret_dst.map(|r| r.0),
                })
                .collect(),
            pages: state
                .mem
                .snapshot_pages()
                .iter()
                .map(|(k, bytes)| (*k, bytes.iter().map(|b| b.raw()).collect()))
                .collect(),
            path: state.path.iter().map(|e| e.raw()).collect(),
            inputs: state
                .inputs
                .iter()
                .map(|i| (i.name.clone(), i.vars.iter().map(|v| v.0).collect()))
                .collect(),
            trace: state.trace.clone(),
            hl_events: state.hl_log.clone(),
            hlpc: state.hlpc,
            hl_opcode: state.hl_opcode,
            hl_len: state.hl_len,
            ll_steps: state.ll_steps,
        };
        snap.fingerprint = snap.compute_fingerprint();
        snap
    }

    /// FNV-1a over every field except [`Snapshot::fingerprint`] itself.
    /// Capture stores it; decoders recompute it to reject corruption.
    pub fn compute_fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        h.usize(self.vars.len());
        for (name, w) in &self.vars {
            h.bytes(name.as_bytes());
            h.u8(*w);
        }
        h.usize(self.nodes.len());
        for n in &self.nodes {
            match n {
                SnapNode::Const { width, bits } => {
                    h.u8(0);
                    h.u8(*width);
                    h.u64(*bits);
                }
                SnapNode::Var { var } => {
                    h.u8(1);
                    h.u32(*var);
                }
                SnapNode::Not { a } => {
                    h.u8(2);
                    h.u32(*a);
                }
                SnapNode::Bin { op, a, b } => {
                    h.u8(3);
                    h.u8(*op);
                    h.u32(*a);
                    h.u32(*b);
                }
                SnapNode::Ite { cond, t, f } => {
                    h.u8(4);
                    h.u32(*cond);
                    h.u32(*t);
                    h.u32(*f);
                }
                SnapNode::Extract { hi, lo, a } => {
                    h.u8(5);
                    h.u8(*hi);
                    h.u8(*lo);
                    h.u32(*a);
                }
                SnapNode::Ext { signed, width, a } => {
                    h.u8(6);
                    h.u8(*signed as u8);
                    h.u8(*width);
                    h.u32(*a);
                }
                SnapNode::Concat { a, b } => {
                    h.u8(7);
                    h.u32(*a);
                    h.u32(*b);
                }
            }
        }
        h.usize(self.frames.len());
        for f in &self.frames {
            h.u32(f.func);
            h.u32(f.block);
            h.u32(f.ip);
            h.usize(f.regs.len());
            for &r in &f.regs {
                h.u32(r);
            }
            match f.ret_dst {
                None => h.u8(0),
                Some(r) => {
                    h.u8(1);
                    h.u32(r);
                }
            }
        }
        h.usize(self.pages.len());
        for (k, bytes) in &self.pages {
            h.u64(*k);
            h.usize(bytes.len());
            for &b in bytes {
                h.u32(b);
            }
        }
        h.usize(self.path.len());
        for &p in &self.path {
            h.u32(p);
        }
        h.usize(self.inputs.len());
        for (name, vars) in &self.inputs {
            h.bytes(name.as_bytes());
            h.usize(vars.len());
            for &v in vars {
                h.u32(v);
            }
        }
        h.usize(self.trace.len());
        for &t in &self.trace {
            h.u64(t);
        }
        h.usize(self.hl_events.len());
        for &(pc, opcode) in &self.hl_events {
            h.u64(pc);
            h.u64(opcode);
        }
        h.u64(self.hlpc);
        h.u64(self.hl_opcode);
        h.u64(self.hl_len);
        h.u64(self.ll_steps);
        h.finish()
    }

    /// Structural and width validation: every node reference in range,
    /// every width rule of the expression language respected, every page
    /// full-sized. A snapshot that fails to validate is unusable (restore
    /// returns `None`) but never a panic.
    pub fn validate(&self) -> bool {
        if self.vars.iter().any(|(_, w)| !(1..=64).contains(w)) {
            return false;
        }
        // Width of each node, computed by the same rules the pool uses.
        // `Var` nodes must appear exactly once each, in declaration order
        // (a pool interns a variable's node at its declaration) — restore
        // relies on this to re-declare variables at the right positions.
        let mut next_var: u32 = 0;
        let mut widths: Vec<u8> = Vec::with_capacity(self.nodes.len());
        for (i, n) in self.nodes.iter().enumerate() {
            let get = |idx: u32| -> Option<u8> {
                if (idx as usize) < i {
                    Some(widths[idx as usize])
                } else {
                    None
                }
            };
            let w = match n {
                SnapNode::Const { width, bits } => {
                    if !(1..=64).contains(width) || *bits & !chef_solver::mask(*width) != 0 {
                        return false;
                    }
                    *width
                }
                SnapNode::Var { var } => {
                    if *var != next_var {
                        return false;
                    }
                    next_var += 1;
                    match self.vars.get(*var as usize) {
                        Some((_, w)) => *w,
                        None => return false,
                    }
                }
                SnapNode::Not { a } => match get(*a) {
                    Some(w) => w,
                    None => return false,
                },
                SnapNode::Bin { op, a, b } => {
                    let (Some(op), Some(wa), Some(wb)) = (binop_from_code(*op), get(*a), get(*b))
                    else {
                        return false;
                    };
                    if wa != wb {
                        return false;
                    }
                    if op.is_predicate() {
                        1
                    } else {
                        wa
                    }
                }
                SnapNode::Ite { cond, t, f } => {
                    let (Some(wc), Some(wt), Some(wf)) = (get(*cond), get(*t), get(*f)) else {
                        return false;
                    };
                    if wc != 1 || wt != wf {
                        return false;
                    }
                    wt
                }
                SnapNode::Extract { hi, lo, a } => {
                    let Some(wa) = get(*a) else { return false };
                    if hi < lo || *hi >= wa {
                        return false;
                    }
                    hi - lo + 1
                }
                SnapNode::Ext { width, a, .. } => {
                    let Some(wa) = get(*a) else { return false };
                    if *width < wa || !(1..=64).contains(width) {
                        return false;
                    }
                    *width
                }
                SnapNode::Concat { a, b } => {
                    let (Some(wa), Some(wb)) = (get(*a), get(*b)) else {
                        return false;
                    };
                    if wa as u16 + wb as u16 > 64 {
                        return false;
                    }
                    wa + wb
                }
            };
            widths.push(w);
        }
        if next_var as usize != self.vars.len() {
            return false;
        }
        let width_of = |idx: u32| widths.get(idx as usize).copied();
        for f in &self.frames {
            if f.regs.iter().any(|&r| width_of(r) != Some(64)) {
                return false;
            }
        }
        for (_, bytes) in &self.pages {
            if bytes.len() != SymMem::PAGE_BYTES {
                return false;
            }
            if bytes.iter().any(|&b| width_of(b) != Some(8)) {
                return false;
            }
        }
        if self.path.iter().any(|&p| width_of(p) != Some(1)) {
            return false;
        }
        for (_, vars) in &self.inputs {
            if vars.iter().any(|&v| self.vars.get(v as usize).is_none()) {
                return false;
            }
        }
        true
    }

    /// Re-materializes the captured state into `pool` by replaying the
    /// node-table transcript through the pool's canonicalizing
    /// constructors, declaring variables at their original positions. Into
    /// a fresh pool this reproduces the capture-time pool identically; see
    /// the [module docs](self) for the determinism contract.
    ///
    /// Returns `None` if the snapshot does not [`validate`](Self::validate)
    /// — callers fall back to full-prefix replay.
    pub fn restore(&self, pool: &mut ExprPool) -> Option<State> {
        if !self.validate() {
            return None;
        }
        let mut vars: Vec<VarId> = Vec::with_capacity(self.vars.len());
        let mut ids: Vec<ExprId> = Vec::with_capacity(self.nodes.len());
        for n in &self.nodes {
            let id = match n {
                SnapNode::Const { width, bits } => pool.constant(*width, *bits),
                SnapNode::Var { var } => {
                    // Validation guarantees declaration order.
                    let (name, w) = &self.vars[*var as usize];
                    let e = pool.fresh_var(name.clone(), *w);
                    vars.push(pool.as_var(e).expect("fresh_var returns a variable"));
                    e
                }
                SnapNode::Not { a } => pool.not(ids[*a as usize]),
                SnapNode::Bin { op, a, b } => {
                    let op = binop_from_code(*op).expect("validated op code");
                    pool.bin(op, ids[*a as usize], ids[*b as usize])
                }
                SnapNode::Ite { cond, t, f } => {
                    pool.ite(ids[*cond as usize], ids[*t as usize], ids[*f as usize])
                }
                SnapNode::Extract { hi, lo, a } => pool.extract(*hi, *lo, ids[*a as usize]),
                SnapNode::Ext { signed, width, a } => {
                    if *signed {
                        pool.sext(*width, ids[*a as usize])
                    } else {
                        pool.zext(*width, ids[*a as usize])
                    }
                }
                SnapNode::Concat { a, b } => pool.concat(ids[*a as usize], ids[*b as usize]),
            };
            ids.push(id);
        }
        let pages: Vec<(u64, Vec<ExprId>)> = self
            .pages
            .iter()
            .map(|(k, bytes)| (*k, bytes.iter().map(|&b| ids[b as usize]).collect()))
            .collect();
        let mem = SymMem::from_pages(pool, &pages)?;
        Some(State {
            id: StateId(0),
            frames: self
                .frames
                .iter()
                .map(|f| Frame {
                    func: FuncId(f.func),
                    block: f.block as usize,
                    ip: f.ip as usize,
                    regs: f.regs.iter().map(|&r| ids[r as usize]).collect(),
                    ret_dst: f.ret_dst.map(Reg),
                })
                .collect(),
            mem,
            path: self.path.iter().map(|&p| ids[p as usize]).collect(),
            inputs: self
                .inputs
                .iter()
                .map(|(name, vs)| SymInput {
                    name: name.clone(),
                    vars: vs.iter().map(|&v| vars[v as usize]).collect(),
                })
                .collect(),
            hlpc: self.hlpc,
            hl_opcode: self.hl_opcode,
            hl_len: self.hl_len,
            ll_steps: self.ll_steps,
            last_fork_loc: None,
            consecutive_forks: 0,
            depth: 0,
            trace: self.trace.clone(),
            replay: std::collections::VecDeque::new(),
            // Kept so re-capturing a restored state reproduces this
            // snapshot byte for byte.
            hl_log: self.hl_events.clone(),
            hl_log_overflow: false,
            saw_guest_exception: false,
            ff_backoff: 0,
        })
    }
}

/// Minimal FNV-1a accumulator for the fingerprint.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn u8(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }

    fn bytes(&mut self, bs: &[u8]) {
        self.u64(bs.len() as u64);
        for &b in bs {
            self.u8(b);
        }
    }

    fn u32(&mut self, v: u32) {
        for b in v.to_le_bytes() {
            self.u8(b);
        }
    }

    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.u8(b);
        }
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chef_lir::ModuleBuilder;
    use chef_solver::Solver;

    fn prog_with_input() -> chef_lir::Program {
        let mut mb = ModuleBuilder::new();
        let buf = mb.data_zeroed(2);
        let name = mb.name_id("x");
        let main = mb.declare("main", 0);
        mb.define(main, move |b| {
            b.make_symbolic(buf, 2u64, name);
            let x = b.load_u8(buf);
            let c = b.ult(x, 9u64);
            b.if_else(c, |b| b.halt(1u64), |b| b.halt(0u64));
        });
        mb.finish("main").unwrap()
    }

    /// Steps the initial state up to (and including) `make_symbolic`.
    fn state_at_fork_point() -> (chef_lir::Program, ExprPool, State) {
        let prog = prog_with_input();
        let mut exec = crate::Executor::new(&prog, crate::ExecConfig::default());
        let mut st = exec.initial_state();
        while st.inputs.is_empty() {
            match exec.step(&mut st) {
                crate::StepEvent::Terminated(_) | crate::StepEvent::Forked { .. } => {
                    panic!("prologue must be deterministic")
                }
                _ => {}
            }
        }
        let pool = std::mem::take(&mut exec.pool);
        (prog, pool, st)
    }

    #[test]
    fn capture_restore_roundtrips_into_a_fresh_pool() {
        let (_prog, pool, st) = state_at_fork_point();
        let snap = Snapshot::capture(&st, &pool);
        assert!(snap.validate());
        assert_eq!(snap.inputs.len(), 1);
        assert_eq!(snap.ll_steps, st.ll_steps);

        let mut pool2 = ExprPool::new();
        let restored = snap.restore(&mut pool2).expect("restores");
        assert_eq!(restored.frames.len(), st.frames.len());
        assert_eq!(restored.path.len(), st.path.len());
        assert_eq!(restored.inputs.len(), 1);
        assert_eq!(restored.ll_steps, st.ll_steps);
        assert_eq!(restored.trace, st.trace);
        // The symbolic byte survives as a variable, concrete bytes as
        // constants.
        let v = restored.inputs[0].vars[0];
        let e = pool2.var_expr(v);
        assert!(pool2.as_var(e).is_some());
        // Re-capturing the restored state yields the identical snapshot.
        let snap2 = Snapshot::capture(&restored, &pool2);
        assert_eq!(snap2.fingerprint, snap.fingerprint);
        assert_eq!(snap2, snap);
    }

    #[test]
    fn restored_state_is_solvable() {
        let (_prog, pool, st) = state_at_fork_point();
        let snap = Snapshot::capture(&st, &pool);
        let mut pool2 = ExprPool::new();
        let mut solver = Solver::new();
        let restored = snap.restore(&mut pool2).unwrap();
        let inputs = restored
            .concretize_inputs(&pool2, &mut solver)
            .expect("fork-point path is feasible");
        assert_eq!(inputs["x"].len(), 2);
    }

    #[test]
    fn corrupt_snapshots_fail_validation_not_panic() {
        let (_prog, pool, st) = state_at_fork_point();
        let snap = Snapshot::capture(&st, &pool);
        // Dangling node reference.
        let mut bad = snap.clone();
        bad.path.push(u32::MAX);
        assert!(!bad.validate());
        assert!(bad.restore(&mut ExprPool::new()).is_none());
        // Truncated page.
        let mut bad = snap.clone();
        if let Some((_, bytes)) = bad.pages.first_mut() {
            bytes.pop();
        }
        assert!(!bad.validate());
        // Dangling variable reference.
        let mut bad = snap;
        bad.inputs.push(("ghost".into(), vec![u32::MAX]));
        assert!(!bad.validate());
        assert!(bad.restore(&mut ExprPool::new()).is_none());
    }
}
