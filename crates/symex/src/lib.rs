//! # chef-symex — the low-level symbolic execution engine
//!
//! Executes LIR programs symbolically, forking a [`State`] at every
//! input-dependent branch, exactly as S2E forks machine-code paths in the
//! paper. The executor is language-agnostic: it understands registers,
//! memory, branches, and the Chef guest API (Table 1), but nothing about
//! the interpreted program — that awareness lives in `chef-core`.
//!
//! Key pieces:
//!
//! - [`mem::SymMem`] — copy-on-write symbolic memory (cheap state forking)
//! - [`State`] — path condition + symbolic store + Chef bookkeeping
//! - [`Executor`] — steps states, forks at branches/symbolic pointers,
//!   implements `make_symbolic`, `log_pc`, `assume`, `upper_bound`,
//!   `concretize`, `is_symbolic`, `end_symbolic`
//!
//! # Examples
//!
//! Symbolically execute the paper's Figure 1 example and collect both paths:
//!
//! ```
//! use chef_lir::ModuleBuilder;
//! use chef_symex::{Executor, ExecConfig, StepEvent};
//!
//! let mut mb = ModuleBuilder::new();
//! let buf = mb.data_zeroed(1);
//! let name = mb.name_id("x");
//! let main = mb.declare("main", 0);
//! mb.define(main, move |b| {
//!     b.make_symbolic(buf, 1u64, name);
//!     let x = b.load_u8(buf);
//!     let t = b.mul(x, 3u64);
//!     let c = b.ult(10u64, t);
//!     b.if_else(c, |b| b.halt(1u64), |b| b.halt(0u64));
//! });
//! let prog = mb.finish("main")?;
//!
//! let mut exec = Executor::new(&prog, ExecConfig::default());
//! let mut queue = vec![exec.initial_state()];
//! let mut finished = 0;
//! while let Some(mut st) = queue.pop() {
//!     loop {
//!         match exec.step(&mut st) {
//!             StepEvent::Terminated(_) => { finished += 1; break; }
//!             StepEvent::Forked { alternates } => queue.extend(alternates),
//!             _ => {}
//!         }
//!     }
//! }
//! assert_eq!(finished, 2);
//! # Ok::<(), String>(())
//! ```

pub mod exec;
pub mod mem;
pub mod snapshot;
pub mod state;

pub use exec::{
    ExecConfig, ExecStats, Executor, FfEvent, FfMode, FfSiteState, FfSiteTable, GuestEvent,
    StepEvent,
};
pub use mem::SymMem;
pub use snapshot::{SnapFrame, SnapNode, Snapshot};
pub use state::{Frame, State, StateId, SymInput, TermStatus};
