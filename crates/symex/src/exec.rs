//! The low-level symbolic executor: runs LIR programs, forking states at
//! symbolic branches. This is the S2E stand-in — it knows nothing about the
//! interpreted language; the Chef layer (`chef-core`) supplies state
//! selection on top.

use std::collections::HashMap;
use std::sync::Arc;

use chef_lir::{
    run_segment_cached, trace_kind, FrameSource, GuestEvent as LirGuestEvent, Inst, Intrinsic,
    MemSize, Operand, PageSource, Program, SegEvent, SegFrame, SegMem, SegPage, SegStop,
    SuperCache, Term,
};
use chef_solver::{ExprId, ExprPool, Solver};

use crate::mem::SymMem;
use crate::snapshot::Snapshot;
use crate::state::{Frame, State, StateId, SymInput, TermStatus};

/// Tunables for the executor.
#[derive(Clone, Copy, Debug)]
pub struct ExecConfig {
    /// Maximum concrete values enumerated for a symbolic pointer before the
    /// remainder are dropped (S2E-style pointer concretization forking).
    pub max_ptr_values: usize,
    /// Maximum feasible targets explored for a symbolic `switch`.
    pub max_switch_targets: usize,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            max_ptr_values: 8,
            max_switch_targets: 16,
        }
    }
}

/// Cap on the recorded pre-capture `log_pc` prefix. Real prologues are a
/// few hundred events; a path that exceeds this is never going to be a
/// useful fork point, so recording stops and capture is forgone rather
/// than letting the log grow with the run.
const HL_LOG_CAP: usize = 1 << 20;

/// Work counters for the executor.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExecStats {
    /// Low-level instructions executed (all states).
    pub ll_instructions: u64,
    /// Branch forks performed.
    pub forks: u64,
    /// Forks caused by symbolic pointers.
    pub symptr_forks: u64,
    /// Feasible symbolic-pointer values dropped due to `max_ptr_values`.
    pub dropped_ptr_values: u64,
    /// States created in total.
    pub states_created: u64,
    /// Fork-point snapshots captured (at `make_symbolic`).
    pub snapshots_captured: u64,
    /// States materialized from a snapshot instead of full prefix replay.
    pub snapshot_restores: u64,
    /// Low-level prologue instructions snapshot restores skipped — work a
    /// replay-from-zero consumer would have re-executed.
    pub prologue_ll_skipped: u64,
    /// Seeded states that fell back to full prefix replay from the
    /// program entry (no usable snapshot). The snapshot resume path keeps
    /// this at zero; tests and CI assert on it.
    pub full_replays: u64,
    /// Low-level instructions executed on the concrete segment VM by
    /// fast-forward (a subset of `ll_instructions` — every concrete step
    /// is counted in both, so budgets and fair-share accounting see
    /// concrete and symbolic work uniformly).
    pub concrete_ll_executed: u64,
    /// Fast-forward segments that made progress (≥ 1 concrete step).
    pub fast_forwards: u64,
    /// Fast-forward segments cut short mid-stretch: a load hit a
    /// symbolic-tainted byte, or the segment fuel ran out. The state
    /// transfers back losslessly either way; this only counts the early
    /// exits.
    pub ff_aborts: u64,
    /// Fast-forward attempts suppressed by the gating policy before any
    /// segment-VM work (the fixed per-state backoff countdown, or the
    /// adaptive per-site backoff / cold-region filter).
    pub ff_skipped: u64,
}

/// Below this many concrete steps a [`FfMode::Fixed`] fast-forward attempt
/// is considered degenerate: the transfer overhead outweighs the win, so
/// the state backs off from further attempts for a while.
const FF_MIN_WIN: u64 = 32;

/// Attempts skipped after a degenerate [`FfMode::Fixed`] fast-forward
/// before trying again.
const FF_BACKOFF: u32 = 64;

/// Adaptive profitability bar, compared against a site's *EWMA* of net
/// win per attempt — instructions retired minus constants interned (see
/// [`FfSiteState::ewma`]) — not the single attempt, so one noisy short
/// segment at a productive site does not trigger backoff. Transfer in
/// and out of a segment (frame set-up, then intern-log replay, register
/// rebuild, and dirty-byte write-back) costs what symbolic execution
/// spends on a few dozen cheap instructions, so sites averaging below
/// that are a net loss and back off. Calibrated on the interpreter
/// packages: higher bars push fork-dense JSON regions whose segments
/// net under ~200 back to the (far more expensive) symbolic stepper;
/// lower bars re-admit simplejson's string-builder sites that mint a
/// fresh constant per instruction and save nothing.
const FF_PROFIT: u64 = 64;

/// First adaptive backoff interval after a degenerate segment; doubles per
/// consecutive degenerate attempt.
const FF_BACKOFF_BASE: u32 = 8;

/// Adaptive backoff cap for anchor sites (loop heads / dispatch heads):
/// anchors never go cold, so this bounds how rarely they are re-probed.
/// High, because a stalled anchor in a fork-dense region is visited every
/// few symbolic steps — at a small cap its residual probes (each a full
/// segment attempt plus transfer) still add up to a measurable tax.
const FF_ANCHOR_CAP: u32 = 256;

/// Adaptive backoff cap for ordinary sites.
const FF_SITE_CAP: u32 = 512;

/// Consecutive degenerate attempts after which a non-anchor site is marked
/// cold: segment initiation in that region retreats to anchor sites.
const FF_COLD_STREAK: u32 = 4;

/// How fast-forward segment initiation is gated. A pure performance knob:
/// canonical test sets, hl_sigs, and instruction counts are byte-identical
/// in every mode.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FfMode {
    /// Never fast-forward (the all-symbolic reference behavior).
    Off,
    /// The global fixed gate: a per-state countdown backoff after a
    /// degenerate data-stall segment, identical at every site.
    Fixed,
    /// Per-site adaptive gating keyed on the pre-segment HL PC: an EWMA of
    /// retired-instructions-per-attempt, exponential backoff doubling up
    /// to a cap and resetting on profitable segments, and cold-region
    /// anchoring (chronically degenerate regions only initiate segments at
    /// loop heads / dispatch heads). The learned table lives on the
    /// executor — shared across states, merged across fleet workers,
    /// persisted across serve slices — and is keyed only on execution
    /// history, never wall time.
    #[default]
    Adaptive,
}

impl FfMode {
    /// Parses a `--ff-mode` argument (`off`, `fixed`, `adaptive`).
    pub fn parse(s: &str) -> Option<FfMode> {
        match s {
            "off" => Some(FfMode::Off),
            "fixed" => Some(FfMode::Fixed),
            "adaptive" => Some(FfMode::Adaptive),
            _ => None,
        }
    }

    /// Stable CLI/JSON name.
    pub fn name(self) -> &'static str {
        match self {
            FfMode::Off => "off",
            FfMode::Fixed => "fixed",
            FfMode::Adaptive => "adaptive",
        }
    }
}

/// Learned adaptive state of one fast-forward site (an HL PC where
/// segments are initiated).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FfSiteState {
    /// EWMA of the *net* win per attempt (α = 1/4): concrete instructions
    /// retired minus constants interned (each logged constant is replayed
    /// through the pool on transfer, costing about one symbolic step).
    pub ewma: u64,
    /// Current backoff interval: attempts to skip after the next
    /// degenerate segment (0 = eager).
    pub backoff: u32,
    /// Consecutive degenerate attempts.
    pub streak: u32,
    /// Attempts left to skip right now. Transient: not shipped on the
    /// wire and reset to zero on import (skipping is local pacing, not
    /// learned knowledge).
    pub skip: u32,
    /// Region is chronically degenerate; only anchor sites initiate.
    pub cold: bool,
    /// Site is a loop head or dispatch head in the HL CFG. Anchors never
    /// go cold and their backoff is capped at [`FF_ANCHOR_CAP`].
    pub anchor: bool,
}

impl FfSiteState {
    /// Deterministic pairwise merge (fleet table exchange): EWMAs average,
    /// backoff and streak stay conservative (maximum), flags OR. The
    /// transient `skip` keeps the local value.
    pub fn absorb(&mut self, other: &FfSiteState) {
        self.ewma = (self.ewma + other.ewma) / 2;
        self.backoff = self.backoff.max(other.backoff);
        self.streak = self.streak.max(other.streak);
        self.cold |= other.cold;
        self.anchor |= other.anchor;
    }
}

/// A learned fast-forward site table in portable form: `(hl_pc, state)`
/// sorted by PC (the order [`Executor::ff_sites_snapshot`] exports and
/// every consumer — wire, fleet merge, serve persistence — preserves).
pub type FfSiteTable = Vec<(u64, FfSiteState)>;

/// Events surfaced by one fast-forward segment, in execution order. The
/// engine processes them exactly as it would the corresponding
/// [`StepEvent`]s of an all-symbolic run.
#[derive(Debug)]
pub enum FfEvent {
    /// The guest reported a high-level location (`log_pc`).
    LogPc {
        /// High-level program counter.
        pc: u64,
        /// High-level opcode.
        opcode: u64,
    },
    /// The guest reported a structured event.
    Guest(GuestEvent),
}

/// Structured guest events surfaced to the engine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GuestEvent {
    /// Exception reached top level (class name resolved from guest memory).
    Exception(String),
    /// Guest entered a code object.
    EnterCode(u64),
    /// Custom marker.
    Marker(u64, u64),
}

/// What happened during one [`Executor::step`].
#[derive(Debug)]
pub enum StepEvent {
    /// Nothing notable; the state advanced.
    Advanced,
    /// The guest reported a high-level location (`log_pc`).
    LogPc {
        /// High-level program counter.
        pc: u64,
        /// High-level opcode.
        opcode: u64,
    },
    /// The state forked; alternates are returned (the stepped state
    /// continues on its own side).
    Forked {
        /// Newly created alternate states.
        alternates: Vec<State>,
    },
    /// The state terminated.
    Terminated(TermStatus),
    /// The guest reported a structured event.
    Guest(GuestEvent),
}

/// Symbolic executor for one LIR program.
///
/// Owns the expression pool and the solver so the Chef layer and the
/// executor share interning and caches.
pub struct Executor<'p> {
    /// Program being executed (the "interpreter binary").
    pub prog: &'p Program,
    /// Shared expression pool.
    pub pool: ExprPool,
    /// Shared solver.
    pub solver: Solver,
    /// Tunables.
    pub config: ExecConfig,
    /// Counters.
    pub stats: ExecStats,
    /// The fork-point snapshot: captured at the last step boundary before
    /// the first symbolic-consuming event (see
    /// [`Executor::should_capture`]), so it includes the whole
    /// deterministic prologue — `make_symbolic` *and* the interpreter
    /// setup after it — and every explored state descends from it.
    /// Engines attach it to exported seeds; [`Executor::restore_state`]
    /// consumes it.
    pub fork_snapshot: Option<Arc<Snapshot>>,
    /// Restored-state templates by snapshot fingerprint: the first restore
    /// decodes, later ones clone (copy-on-write memory makes that cheap).
    snap_cache: HashMap<u64, State>,
    next_state_id: u64,
    /// Fast-forward gating mode.
    ff_mode: FfMode,
    /// Adaptive per-site gating state, keyed by pre-segment HL PC. Lives
    /// here (not on states) so learning survives forks and snapshot
    /// restores; exported via [`Executor::ff_sites_snapshot`].
    ff_sites: HashMap<u64, FfSiteState>,
    /// One-entry negative cache: the last HL PC found cold. Cold sites are
    /// revisited every symbolic step of a stalled region, and coldness is
    /// sticky within a run, so this turns the common skip into one compare
    /// instead of a hash probe.
    ff_cold_hint: u64,
    /// Superinstruction cache for the segment VM: block fusions learned in
    /// one segment speed up every later segment.
    seg_cache: SuperCache,
    /// Recycled overlay pages for [`Executor::try_fast_forward`]: each
    /// attempt drains its [`SegMem`] back here so back-to-back segments
    /// reuse page allocations instead of zeroing fresh ones.
    seg_pages: Vec<SegPage>,
}

impl<'p> Executor<'p> {
    /// Creates an executor for `prog`.
    pub fn new(prog: &'p Program, config: ExecConfig) -> Self {
        Executor {
            prog,
            pool: ExprPool::new(),
            solver: Solver::new(),
            config,
            stats: ExecStats::default(),
            fork_snapshot: None,
            snap_cache: HashMap::new(),
            next_state_id: 1,
            ff_mode: FfMode::default(),
            ff_sites: HashMap::new(),
            ff_cold_hint: u64::MAX,
            seg_cache: SuperCache::new(),
            seg_pages: Vec::new(),
        }
    }

    /// Sets the fast-forward gating mode.
    pub fn set_ff_mode(&mut self, mode: FfMode) {
        self.ff_mode = mode;
    }

    /// The current fast-forward gating mode.
    pub fn ff_mode(&self) -> FfMode {
        self.ff_mode
    }

    /// Marks `sites` as anchors (loop heads / dispatch heads from the HL
    /// CFG): once a region is cold, only anchors initiate segments, and
    /// anchors never go cold. Timing is correctness-free — fast-forward is
    /// a pure performance knob — but callers should invoke this at
    /// deterministic points so runs stay reproducible.
    pub fn set_ff_anchors<I: IntoIterator<Item = u64>>(&mut self, sites: I) {
        for pc in sites {
            self.ff_sites.entry(pc).or_default().anchor = true;
        }
        // An anchored site may have been cold before: drop the negative
        // cache so the gate re-reads the table.
        self.ff_cold_hint = u64::MAX;
    }

    /// Merges a learned site table (a fleet peer's, or one persisted by a
    /// serve session) into this executor's: EWMAs average, backoff and
    /// streak take the maximum, flags OR. Deterministic for a fixed call
    /// order.
    pub fn ff_absorb<I: IntoIterator<Item = (u64, FfSiteState)>>(&mut self, sites: I) {
        for (pc, other) in sites {
            match self.ff_sites.entry(pc) {
                std::collections::hash_map::Entry::Occupied(mut e) => e.get_mut().absorb(&other),
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(FfSiteState { skip: 0, ..other });
                }
            }
        }
        self.ff_cold_hint = u64::MAX;
    }

    /// The learned site table, sorted by HL PC (the deterministic export
    /// order every consumer preserves). Transient skip counters are
    /// zeroed.
    pub fn ff_sites_snapshot(&self) -> FfSiteTable {
        let mut v: FfSiteTable = self
            .ff_sites
            .iter()
            .map(|(&pc, s)| (pc, FfSiteState { skip: 0, ..*s }))
            .collect();
        v.sort_unstable_by_key(|&(pc, _)| pc);
        v
    }

    /// Builds the initial state (data segments loaded, entry frame pushed).
    pub fn initial_state(&mut self) -> State {
        self.stats.states_created += 1;
        State::initial(&mut self.pool, self.prog)
    }

    /// Builds an initial state that first replays the recorded event
    /// prefix `choices` (see [`State::trace`]): stepping it re-derives the
    /// state that recorded the prefix, without forking along the way.
    pub fn seeded_state(&mut self, choices: &[u64]) -> State {
        if !choices.is_empty() {
            self.stats.full_replays += 1;
        }
        let mut s = self.initial_state();
        s.replay = choices.iter().copied().collect();
        s
    }

    /// Materializes a state from a fork-point snapshot instead of
    /// replaying the interpreter prologue. The returned state's trace
    /// equals the snapshot's; the caller queues the seed's remaining
    /// choices as the replay suffix.
    ///
    /// Returns `None` if the snapshot fails validation — the caller falls
    /// back to full prefix replay ([`Executor::seeded_state`]).
    pub fn restore_state(&mut self, snap: &Snapshot) -> Option<State> {
        if !self.snap_cache.contains_key(&snap.fingerprint) {
            let _restore = chef_trace::span(chef_trace::Phase::SnapshotRestore);
            let mut template = snap.restore(&mut self.pool)?;
            // The engine replays `snap.hl_events` itself; keeping the
            // prefix on the state would just be cloned on every fork.
            template.hl_log = Vec::new();
            self.snap_cache.insert(snap.fingerprint, template);
        }
        let mut s = self.snap_cache[&snap.fingerprint].clone();
        s.id = self.fresh_id();
        self.stats.states_created += 1;
        self.stats.snapshot_restores += 1;
        self.stats.prologue_ll_skipped += snap.ll_steps;
        Some(s)
    }

    /// Whether the fork-point snapshot should be captured at the current
    /// step boundary: no snapshot yet, the state is still on the unique
    /// pre-fork prologue path, symbolic inputs exist, and the *next*
    /// instruction is the first to consume symbolic data (fork, solver
    /// query, or concretization). Capturing at the last clean boundary
    /// before that event skips the maximum shared prologue — including the
    /// interpreter setup that runs *after* `make_symbolic` — while every
    /// explored state still descends from the capture point (everything
    /// before it is deterministic and shared).
    fn should_capture(&self, state: &State) -> bool {
        self.fork_snapshot.is_none()
            && !state.inputs.is_empty()
            && state.last_fork_loc.is_none()
            && !state.saw_guest_exception
            && !state.hl_log_overflow
            && self.peek_consumes_symbolic(state)
    }

    /// Peeks at the instruction (or terminator) the next step will
    /// execute: does it consume a symbolic value in a way that forks,
    /// queries the solver, or records a trace event?
    fn peek_consumes_symbolic(&self, state: &State) -> bool {
        let Some(frame) = state.frames.last() else {
            return false;
        };
        let func = self.prog.func(frame.func);
        let block = &func.blocks[frame.block];
        let sym_op = |op: &Operand| match op {
            Operand::Imm(_) => false,
            Operand::Reg(r) => !self.pool.is_const(frame.regs[r.0 as usize]),
        };
        if frame.ip < block.insts.len() {
            match &block.insts[frame.ip] {
                // Symbolic pointers fork; symbolic stored values don't.
                Inst::Load { addr, .. } | Inst::Store { addr, .. } => sym_op(addr),
                Inst::Intrinsic { intr, args, .. } => {
                    matches!(
                        intr,
                        Intrinsic::MakeSymbolic
                            | Intrinsic::LogPc
                            | Intrinsic::Assume
                            | Intrinsic::UpperBound
                            | Intrinsic::Concretize
                            | Intrinsic::EndSymbolic
                            | Intrinsic::Abort
                    ) && args.iter().any(sym_op)
                }
                _ => false,
            }
        } else {
            match &block.term {
                Term::Branch { cond, .. } => sym_op(cond),
                Term::Switch { on, .. } => sym_op(on),
                Term::Halt { code } => sym_op(code),
                _ => false,
            }
        }
    }

    fn fresh_id(&mut self) -> StateId {
        let id = StateId(self.next_state_id);
        self.next_state_id += 1;
        id
    }

    /// Gives a cloned state its own identity and counts it. Engines use
    /// this when they materialize states by cloning (e.g. the shared
    /// replay-prefix clones of grouped frontier injection) rather than
    /// through [`Executor::fork`] or a restore.
    pub fn adopt_clone(&mut self, state: &mut State) {
        state.id = self.fresh_id();
        self.stats.states_created += 1;
    }

    fn fork(&mut self, base: &State, constraint: Option<ExprId>) -> State {
        let mut s = base.clone();
        s.id = self.fresh_id();
        s.depth += 1;
        if let Some(c) = constraint {
            s.path.push(c);
        }
        self.stats.states_created += 1;
        s
    }

    fn eval(&mut self, state: &State, op: &Operand) -> ExprId {
        match op {
            Operand::Reg(r) => state.frame().regs[r.0 as usize],
            Operand::Imm(v) => self.pool.constant(64, *v),
        }
    }

    fn truthy(&mut self, e: ExprId) -> ExprId {
        self.pool.is_nonzero(e)
    }

    fn widen_bool(&mut self, e: ExprId) -> ExprId {
        self.pool.zext(64, e)
    }

    /// Concretizes `expr` on this path: picks one feasible value, binds the
    /// path to it, and returns the value. Returns `None` on contradiction.
    ///
    /// The chosen value is recorded in the state's trace (and taken from
    /// the replay queue during prefix replay): value selection goes through
    /// solver caches whose answers depend on query history, so replay must
    /// pin the original choice rather than re-ask.
    fn concretize_value(&mut self, state: &mut State, expr: ExprId) -> Option<u64> {
        if let Some(v) = self.pool.as_const(expr) {
            return Some(v);
        }
        let v = match state.take_replay() {
            Some(v) => v,
            None => self.solver.value_of(&self.pool, expr, &state.path)?,
        };
        state.trace.push(v);
        let w = self.pool.width(expr);
        let c = self.pool.constant(w, v);
        let eq = self.pool.eq(expr, c);
        state.path.push(eq);
        Some(v)
    }

    /// Resolves a (possibly symbolic) address to one concrete value in the
    /// current state, forking alternates for other feasible values.
    fn resolve_pointer(
        &mut self,
        state: &mut State,
        addr: ExprId,
    ) -> Result<(u64, Vec<State>), TermStatus> {
        if let Some(v) = self.pool.as_const(addr) {
            return Ok((v, Vec::new()));
        }
        if let Some(v) = state.take_replay() {
            // Prefix replay: pin the recorded address instead of
            // re-enumerating; siblings were forked at recording time.
            state.trace.push(v);
            let c = self.pool.constant(64, v);
            let eq = self.pool.eq(addr, c);
            state.path.push(eq);
            return Ok((v, Vec::new()));
        }
        let limit = self.config.max_ptr_values;
        let mut vals = self
            .solver
            .enumerate_values(&mut self.pool, addr, &state.path, limit + 1);
        // Ascending order makes the fork layout independent of solver model
        // order whenever the value set is complete (the common case). Only
        // when more than `max_ptr_values` targets exist does the *kept
        // subset* still depend on enumeration history — that residual
        // nondeterminism is inherent to the dropping policy and is counted
        // in `dropped_ptr_values`.
        vals.sort_unstable();
        match vals.len() {
            0 => Err(TermStatus::AssumeFailed),
            1 => {
                state.trace.push(vals[0]);
                Ok((vals[0], Vec::new()))
            }
            n => {
                let dropped = n > limit;
                let vals = &vals[..n.min(limit)];
                if dropped {
                    self.stats.dropped_ptr_values += 1;
                }
                let loc = state.ll_loc();
                let mut alternates = Vec::new();
                // Alternates re-execute the memory access, so their value
                // goes into the replay queue, not the trace: the
                // re-execution consumes it and records it exactly once —
                // and if the alternate is exported before re-executing,
                // the seed still carries the value (replay remainders are
                // appended to shipped seeds).
                for &v in &vals[1..] {
                    let c = self.pool.constant(64, v);
                    let eq = self.pool.eq(addr, c);
                    let mut alt = self.fork(state, Some(eq));
                    alt.replay.push_back(v);
                    Self::note_fork(&mut alt, loc);
                    alternates.push(alt);
                }
                let c = self.pool.constant(64, vals[0]);
                let eq = self.pool.eq(addr, c);
                state.path.push(eq);
                state.trace.push(vals[0]);
                Self::note_fork(state, loc);
                self.stats.symptr_forks += alternates.len() as u64;
                self.stats.forks += alternates.len() as u64;
                Ok((vals[0], alternates))
            }
        }
    }

    /// Feasibility of `state.path ∧ extra` without cloning the path: the
    /// trial constraint is pushed, checked, and popped. With the
    /// incremental solver the check itself is an assumption solve over the
    /// persistent instance, so this makes the whole branch-feasibility path
    /// allocation-light.
    fn feasible_with(&mut self, state: &mut State, extra: ExprId) -> bool {
        state.path.push(extra);
        let ok = self.solver.is_feasible(&self.pool, &state.path);
        state.path.pop();
        ok
    }

    fn note_fork(state: &mut State, loc: (u32, u32)) {
        if state.last_fork_loc == Some(loc) {
            state.consecutive_forks += 1;
        } else {
            state.last_fork_loc = Some(loc);
            state.consecutive_forks = 1;
        }
    }

    /// Executes one instruction (or terminator) of `state`.
    ///
    /// The state is mutated in place; forked alternates are returned in the
    /// event. After `StepEvent::Terminated` the state must not be stepped
    /// again.
    pub fn step(&mut self, state: &mut State) -> StepEvent {
        if self.should_capture(state) {
            let _cap = chef_trace::span(chef_trace::Phase::SnapshotCap);
            let snap = Snapshot::capture(state, &self.pool);
            self.stats.snapshots_captured += 1;
            self.fork_snapshot = Some(Arc::new(snap));
            // The snapshot owns the prefix now; dropping it from the state
            // keeps every future fork from cloning it along.
            state.hl_log = Vec::new();
        }
        self.stats.ll_instructions += 1;
        state.ll_steps += 1;
        let func = self.prog.func(state.frame().func);
        let block = &func.blocks[state.frame().block];
        let ip = state.frame().ip;
        if ip < block.insts.len() {
            let inst = block.insts[ip].clone();
            state.frame_mut().ip += 1;
            return self.exec_inst(state, inst);
        }
        let term = block.term.clone();
        self.exec_term(state, term)
    }

    fn exec_inst(&mut self, state: &mut State, inst: Inst) -> StepEvent {
        match inst {
            Inst::Const { dst, value } => {
                let e = self.pool.constant(64, value);
                state.frame_mut().regs[dst.0 as usize] = e;
                StepEvent::Advanced
            }
            Inst::Mov { dst, src } => {
                let e = self.eval(state, &src);
                state.frame_mut().regs[dst.0 as usize] = e;
                StepEvent::Advanced
            }
            Inst::Bin { op, dst, a, b } => {
                let ea = self.eval(state, &a);
                let eb = self.eval(state, &b);
                let mut r = self.pool.bin(op, ea, eb);
                if op.is_predicate() {
                    r = self.widen_bool(r);
                }
                state.frame_mut().regs[dst.0 as usize] = r;
                StepEvent::Advanced
            }
            Inst::Not { dst, a } => {
                let ea = self.eval(state, &a);
                let r = self.pool.not(ea);
                state.frame_mut().regs[dst.0 as usize] = r;
                StepEvent::Advanced
            }
            Inst::Select { dst, cond, t, f } => {
                let ec = self.eval(state, &cond);
                let c = self.truthy(ec);
                let et = self.eval(state, &t);
                let ef = self.eval(state, &f);
                let r = self.pool.ite(c, et, ef);
                state.frame_mut().regs[dst.0 as usize] = r;
                StepEvent::Advanced
            }
            Inst::Load { dst, addr, size } => {
                let ea = self.eval(state, &addr);
                let (a, alternates) = match self.resolve_pointer(state, ea) {
                    Ok(r) => r,
                    Err(t) => return self.terminate(state, t),
                };
                let v = match size {
                    MemSize::U8 => {
                        let b = state.mem.read_u8(a);
                        self.pool.zext(64, b)
                    }
                    MemSize::U64 => state.mem.read_u64(&mut self.pool, a),
                };
                state.frame_mut().regs[dst.0 as usize] = v;
                if alternates.is_empty() {
                    StepEvent::Advanced
                } else {
                    // Alternates re-execute the load at their own address.
                    let mut alts = alternates;
                    for alt in &mut alts {
                        alt.frame_mut().ip -= 1;
                    }
                    StepEvent::Forked { alternates: alts }
                }
            }
            Inst::Store { addr, value, size } => {
                let ea = self.eval(state, &addr);
                let ev = self.eval(state, &value);
                let (a, alternates) = match self.resolve_pointer(state, ea) {
                    Ok(r) => r,
                    Err(t) => return self.terminate(state, t),
                };
                match size {
                    MemSize::U8 => {
                        let b = self.pool.extract(7, 0, ev);
                        state.mem.write_u8(&self.pool, a, b);
                    }
                    MemSize::U64 => state.mem.write_u64(&mut self.pool, a, ev),
                }
                if alternates.is_empty() {
                    StepEvent::Advanced
                } else {
                    let mut alts = alternates;
                    for alt in &mut alts {
                        alt.frame_mut().ip -= 1;
                    }
                    StepEvent::Forked { alternates: alts }
                }
            }
            Inst::Call { dst, func, args } => {
                let callee = self.prog.func(func);
                let zero = self.pool.constant(64, 0);
                let mut regs = vec![zero; callee.n_regs as usize];
                for (i, a) in args.iter().enumerate() {
                    regs[i] = self.eval(state, a);
                }
                state.frames.push(Frame {
                    func,
                    block: 0,
                    ip: 0,
                    regs,
                    ret_dst: dst,
                });
                StepEvent::Advanced
            }
            Inst::Intrinsic { dst, intr, args } => self.exec_intrinsic(state, dst, intr, &args),
        }
    }

    fn exec_intrinsic(
        &mut self,
        state: &mut State,
        dst: Option<chef_lir::Reg>,
        intr: Intrinsic,
        args: &[Operand],
    ) -> StepEvent {
        let vals: Vec<ExprId> = args.iter().map(|a| self.eval(state, a)).collect();
        match intr {
            Intrinsic::MakeSymbolic => {
                let addr = match self.concretize_value(state, vals[0]) {
                    Some(v) => v,
                    None => return self.terminate(state, TermStatus::AssumeFailed),
                };
                let len = match self.concretize_value(state, vals[1]) {
                    Some(v) => v,
                    None => return self.terminate(state, TermStatus::AssumeFailed),
                };
                let name_id = self
                    .pool
                    .as_const(vals[2])
                    .expect("name id is an immediate");
                let name = self.prog.name(name_id).to_string();
                let mut vars = Vec::with_capacity(len as usize);
                for i in 0..len {
                    let v = self.pool.fresh_var(format!("{name}[{i}]"), 8);
                    vars.push(self.pool.as_var(v).expect("fresh var"));
                    state.mem.write_u8(&self.pool, addr.wrapping_add(i), v);
                }
                state.inputs.push(SymInput { name, vars });
                StepEvent::Advanced
            }
            Intrinsic::LogPc => {
                let pc = match self.concretize_value(state, vals[0]) {
                    Some(v) => v,
                    None => return self.terminate(state, TermStatus::AssumeFailed),
                };
                let opcode = match self.concretize_value(state, vals[1]) {
                    Some(v) => v,
                    None => return self.terminate(state, TermStatus::AssumeFailed),
                };
                state.hlpc = pc;
                state.hl_opcode = opcode;
                state.hl_len += 1;
                // Pre-capture prologue prefix for the fork-point snapshot;
                // recording stops once a snapshot exists or the state
                // forks. A target that never reaches a capture point
                // (e.g. no symbolic input ever consumed) would otherwise
                // record forever, so past a generous prologue bound the
                // log is dropped and capture is forgone for this path.
                if self.fork_snapshot.is_none() && state.last_fork_loc.is_none() {
                    if state.hl_log.len() < HL_LOG_CAP {
                        state.hl_log.push((pc, opcode));
                    } else {
                        state.hl_log = Vec::new();
                        state.hl_log_overflow = true;
                    }
                }
                StepEvent::LogPc { pc, opcode }
            }
            Intrinsic::Assume => {
                let c = self.truthy(vals[0]);
                match self.pool.as_const(c) {
                    Some(1) => StepEvent::Advanced,
                    Some(_) => self.terminate(state, TermStatus::AssumeFailed),
                    None if state.is_replaying() => {
                        // Prefix replay: the assumption held when the prefix
                        // was recorded, so re-checking is redundant.
                        state.path.push(c);
                        StepEvent::Advanced
                    }
                    None => {
                        if self.feasible_with(state, c) {
                            state.path.push(c);
                            StepEvent::Advanced
                        } else {
                            self.terminate(state, TermStatus::AssumeFailed)
                        }
                    }
                }
            }
            Intrinsic::IsSymbolic => {
                let r = self
                    .pool
                    .constant(64, (!self.pool.is_const(vals[0])) as u64);
                if let Some(d) = dst {
                    state.frame_mut().regs[d.0 as usize] = r;
                }
                StepEvent::Advanced
            }
            Intrinsic::UpperBound => {
                let v = match self.solver.max_value(&mut self.pool, vals[0], &state.path) {
                    Some(v) => v,
                    None => return self.terminate(state, TermStatus::AssumeFailed),
                };
                if let Some(d) = dst {
                    let e = self.pool.constant(64, v);
                    state.frame_mut().regs[d.0 as usize] = e;
                }
                StepEvent::Advanced
            }
            Intrinsic::Concretize => {
                let v = match self.concretize_value(state, vals[0]) {
                    Some(v) => v,
                    None => return self.terminate(state, TermStatus::AssumeFailed),
                };
                if let Some(d) = dst {
                    let e = self.pool.constant(64, v);
                    state.frame_mut().regs[d.0 as usize] = e;
                }
                StepEvent::Advanced
            }
            Intrinsic::EndSymbolic => {
                let v = self.concretize_value(state, vals[0]).unwrap_or(0);
                self.terminate(state, TermStatus::Ended(v))
            }
            Intrinsic::Abort => {
                let v = self.concretize_value(state, vals[0]).unwrap_or(0);
                self.terminate(state, TermStatus::Aborted(v))
            }
            Intrinsic::TraceEvent => {
                let kind = self.pool.as_const(vals[0]).unwrap_or(0);
                let ev = match kind {
                    trace_kind::EXCEPTION => {
                        let ptr = self.pool.as_const(vals[1]).unwrap_or(0);
                        let len = self.pool.as_const(vals[2]).unwrap_or(0).min(256);
                        let mut bytes = Vec::with_capacity(len as usize);
                        for i in 0..len {
                            let b = state.mem.read_u8(ptr.wrapping_add(i));
                            bytes.push(self.pool.as_const(b).unwrap_or(b'?' as u64) as u8);
                        }
                        state.saw_guest_exception = true;
                        GuestEvent::Exception(String::from_utf8_lossy(&bytes).into_owned())
                    }
                    trace_kind::ENTER_CODE => {
                        GuestEvent::EnterCode(self.pool.as_const(vals[1]).unwrap_or(0))
                    }
                    _ => GuestEvent::Marker(
                        self.pool.as_const(vals[1]).unwrap_or(0),
                        self.pool.as_const(vals[2]).unwrap_or(0),
                    ),
                };
                StepEvent::Guest(ev)
            }
            Intrinsic::DebugPrint => StepEvent::Advanced,
        }
    }

    fn exec_term(&mut self, state: &mut State, term: Term) -> StepEvent {
        match term {
            Term::Jump(b) => {
                let f = state.frame_mut();
                f.block = b.0 as usize;
                f.ip = 0;
                StepEvent::Advanced
            }
            Term::Branch { cond, then_, else_ } => {
                let ec = self.eval(state, &cond);
                let c = self.truthy(ec);
                if let Some(v) = self.pool.as_const(c) {
                    let f = state.frame_mut();
                    f.block = if v == 1 { then_.0 } else { else_.0 } as usize;
                    f.ip = 0;
                    return StepEvent::Advanced;
                }
                let nc = self.pool.not(c);
                if let Some(choice) = state.take_replay() {
                    // Prefix replay: take the recorded side without
                    // feasibility checks (it was feasible when recorded)
                    // and without forking the sibling.
                    let (cons, target) = if choice == 0 { (c, then_) } else { (nc, else_) };
                    state.trace.push(choice.min(1));
                    state.path.push(cons);
                    let f = state.frame_mut();
                    f.block = target.0 as usize;
                    f.ip = 0;
                    return StepEvent::Advanced;
                }
                let feas_then = self.feasible_with(state, c);
                let feas_else = self.feasible_with(state, nc);
                match (feas_then, feas_else) {
                    (true, true) => {
                        let loc = state.ll_loc();
                        let mut alt = self.fork(state, Some(nc));
                        alt.trace.push(1);
                        Self::note_fork(&mut alt, loc);
                        {
                            let f = alt.frame_mut();
                            f.block = else_.0 as usize;
                            f.ip = 0;
                        }
                        state.path.push(c);
                        state.trace.push(0);
                        Self::note_fork(state, loc);
                        let f = state.frame_mut();
                        f.block = then_.0 as usize;
                        f.ip = 0;
                        self.stats.forks += 1;
                        StepEvent::Forked {
                            alternates: vec![alt],
                        }
                    }
                    (true, false) => {
                        state.trace.push(0);
                        let f = state.frame_mut();
                        f.block = then_.0 as usize;
                        f.ip = 0;
                        StepEvent::Advanced
                    }
                    (false, true) => {
                        state.trace.push(1);
                        let f = state.frame_mut();
                        f.block = else_.0 as usize;
                        f.ip = 0;
                        StepEvent::Advanced
                    }
                    (false, false) => self.terminate(state, TermStatus::AssumeFailed),
                }
            }
            Term::Switch { on, cases, default } => {
                let eo = self.eval(state, &on);
                if let Some(v) = self.pool.as_const(eo) {
                    let target = cases
                        .iter()
                        .find(|(cv, _)| *cv == v)
                        .map(|(_, b)| *b)
                        .unwrap_or(default);
                    let f = state.frame_mut();
                    f.block = target.0 as usize;
                    f.ip = 0;
                    return StepEvent::Advanced;
                }
                if let Some(arm) = state.take_replay() {
                    // Prefix replay: rebuild the recorded arm's constraint.
                    // Arm codes < cases.len() name a case; codes >=
                    // cases.len() name the default arm, with the excess
                    // encoding how many case negations guarded it when it
                    // was recorded (the scan below can stop early).
                    state.trace.push(arm);
                    let (cons, target) = if (arm as usize) < cases.len() {
                        let (cv, b) = cases[arm as usize];
                        let c = self.pool.constant(64, cv);
                        (self.pool.eq(eo, c), b)
                    } else {
                        let guards = (arm as usize - cases.len()).min(cases.len());
                        let mut acc = self.pool.true_();
                        for &(cv, _) in &cases[..guards] {
                            let c = self.pool.constant(64, cv);
                            let eq = self.pool.eq(eo, c);
                            let ne = self.pool.not(eq);
                            acc = self.pool.and1(acc, ne);
                        }
                        (acc, default)
                    };
                    state.path.push(cons);
                    let f = state.frame_mut();
                    f.block = target.0 as usize;
                    f.ip = 0;
                    return StepEvent::Advanced;
                }
                // Symbolic dispatch: fork each feasible case plus default.
                // Each feasible arm carries its replay code (see above).
                let mut feasible: Vec<(u64, ExprId, u32)> = Vec::new();
                let mut default_guard: Vec<ExprId> = Vec::new();
                for (i, (cv, b)) in cases.iter().enumerate() {
                    let c = self.pool.constant(64, *cv);
                    let eq = self.pool.eq(eo, c);
                    if self.feasible_with(state, eq) {
                        feasible.push((i as u64, eq, b.0));
                    }
                    let ne = self.pool.not(eq);
                    default_guard.push(ne);
                    if feasible.len() >= self.config.max_switch_targets {
                        break;
                    }
                }
                // Default arm: all scanned cases excluded.
                let depth = state.path.len();
                state.path.extend(default_guard.iter().copied());
                let default_feasible = self.solver.is_feasible(&self.pool, &state.path);
                state.path.truncate(depth);
                if default_feasible {
                    // Use conjunction of the negations as one constraint set.
                    let mut acc = self.pool.true_();
                    for &g in &default_guard {
                        acc = self.pool.and1(acc, g);
                    }
                    feasible.push(((cases.len() + default_guard.len()) as u64, acc, default.0));
                }
                if feasible.is_empty() {
                    return self.terminate(state, TermStatus::AssumeFailed);
                }
                let loc = state.ll_loc();
                let mut alternates = Vec::new();
                for &(code, cons, block) in feasible.iter().skip(1) {
                    let mut alt = self.fork(state, Some(cons));
                    alt.trace.push(code);
                    Self::note_fork(&mut alt, loc);
                    let f = alt.frame_mut();
                    f.block = block as usize;
                    f.ip = 0;
                    alternates.push(alt);
                }
                let (code, cons, block) = feasible[0];
                state.path.push(cons);
                state.trace.push(code);
                let f = state.frame_mut();
                f.block = block as usize;
                f.ip = 0;
                if alternates.is_empty() {
                    StepEvent::Advanced
                } else {
                    Self::note_fork(state, loc);
                    self.stats.forks += alternates.len() as u64;
                    StepEvent::Forked { alternates }
                }
            }
            Term::Ret(val) => {
                let v = val.map(|op| self.eval(state, &op));
                let ret_dst = state.frame().ret_dst;
                state.frames.pop();
                if state.frames.is_empty() {
                    return self.terminate_done(state, TermStatus::Returned);
                }
                if let (Some(dst), Some(v)) = (ret_dst, v) {
                    state.frame_mut().regs[dst.0 as usize] = v;
                }
                StepEvent::Advanced
            }
            Term::Halt { code } => {
                let e = self.eval(state, &code);
                let v = self.concretize_value(state, e).unwrap_or(0);
                self.terminate(state, TermStatus::Halted(v))
            }
            Term::Unterminated => unreachable!("validated programs are terminated"),
        }
    }

    fn terminate(&mut self, state: &mut State, status: TermStatus) -> StepEvent {
        state.frames.clear();
        let _ = state;
        StepEvent::Terminated(status)
    }

    fn terminate_done(&mut self, _state: &mut State, status: TermStatus) -> StepEvent {
        StepEvent::Terminated(status)
    }

    /// Attempts to fast-forward `state` on the concrete segment VM: runs
    /// the program concretely from the state's current machine image until
    /// the next symbolic-consuming instruction (or `max_steps`), then
    /// transfers the image back. Returns the segment's guest events, or
    /// `None` if no concrete progress was possible (the caller falls
    /// through to a normal symbolic [`Executor::step`]).
    ///
    /// Equivalence with the all-symbolic run is exact, not approximate:
    ///
    /// * Only instructions whose symbolic execution never touches the
    ///   solver, the trace, or the replay queue are executed concretely
    ///   (register taint is a per-frame bitmap; memory taint is checked
    ///   per load). The stopping instruction is left for [`Executor::step`].
    /// * The segment VM logs every constant the symbolic executor would
    ///   have interned, in order; replaying that log keeps the expression
    ///   pool's id allocation — and with it operand canonicalization,
    ///   snapshots, and solver behavior — byte-identical.
    /// * Concrete steps are charged to `ll_instructions` and
    ///   `state.ll_steps` exactly like symbolic ones, so budgets, hang
    ///   detection, and fair-share scheduling are unchanged.
    pub fn try_fast_forward(&mut self, state: &mut State, max_steps: u64) -> Option<Vec<FfEvent>> {
        // Policy key: the HL PC where the segment would *start* (the
        // segment itself may retire `log_pc` events and move `state.hlpc`).
        let ff_site = state.hlpc;
        match self.ff_mode {
            FfMode::Off => return None,
            FfMode::Fixed => {
                if state.ff_backoff > 0 {
                    state.ff_backoff -= 1;
                    self.stats.ff_skipped += 1;
                    return None;
                }
            }
            FfMode::Adaptive => {
                if ff_site == self.ff_cold_hint {
                    self.stats.ff_skipped += 1;
                    return None;
                }
                if let Some(site) = self.ff_sites.get_mut(&ff_site) {
                    if site.cold && !site.anchor {
                        self.ff_cold_hint = ff_site;
                        self.stats.ff_skipped += 1;
                        return None;
                    }
                    if site.skip > 0 {
                        site.skip -= 1;
                        self.stats.ff_skipped += 1;
                        return None;
                    }
                }
            }
        }
        if max_steps == 0 || state.frames.is_empty() {
            return None;
        }
        // Symbolic → concrete: only the top frame is converted eagerly
        // (constant registers carry their value, non-constant ones their
        // expression id as an opaque token). Deeper caller frames are
        // materialized on demand when a `ret` pops into them, so a deep
        // interpreter stack costs nothing per attempt.
        struct CallerFrames<'a> {
            frames: &'a [Frame],
            pool: &'a ExprPool,
            consumed: usize,
        }
        impl FrameSource for CallerFrames<'_> {
            fn pop_into(&mut self) -> Option<SegFrame> {
                let idx = self.frames.len().checked_sub(1 + self.consumed)?;
                self.consumed += 1;
                Some(to_seg_frame(self.pool, &self.frames[idx]))
            }
        }
        let (callers, top) = state.frames.split_at(state.frames.len() - 1);
        let mut seg_frames = vec![to_seg_frame(&self.pool, &top[0])];
        let mut below = CallerFrames {
            frames: callers,
            pool: &self.pool,
            consumed: 0,
        };
        /// Lazy concrete view of the CoW symbolic memory.
        struct SymSource<'a> {
            mem: &'a SymMem,
            pool: &'a ExprPool,
        }
        impl PageSource for SymSource<'_> {
            fn byte(&self, addr: u64) -> Option<u8> {
                self.pool.as_const(self.mem.read_u8(addr)).map(|v| v as u8)
            }
        }
        let src = SymSource {
            mem: &state.mem,
            pool: &self.pool,
        };
        let mut seg_mem = SegMem::with_pool(&src, std::mem::take(&mut self.seg_pages));
        chef_trace::ff_attempt(ff_site);
        let out = {
            let _seg = chef_trace::span(chef_trace::Phase::ConcreteSeg);
            run_segment_cached(
                self.prog,
                &mut seg_frames,
                &mut below,
                &mut seg_mem,
                max_steps,
                &mut self.seg_cache,
            )
        };
        let consumed = below.consumed;
        let (dirty, mut pages) = seg_mem.drain();
        // The pool tracks the high-water page count of a single attempt;
        // cap it so one memory-sweeping outlier doesn't pin pages forever.
        pages.truncate(512);
        self.seg_pages = pages;
        match self.ff_mode {
            FfMode::Off => unreachable!("gated above"),
            // Fixed backoff policy: short segments ending at a *data*
            // boundary mean this region is dense with live symbolic values
            // — nearby attempts will stall the same way, so pause before
            // retrying. One-shot [`SegStop::Event`] stops (make_symbolic,
            // forks, terminators) are handled by the next symbolic step,
            // after which the landscape is fresh; they never trigger
            // backoff.
            FfMode::Fixed => {
                let data_stall = matches!(out.stop, SegStop::Boundary | SegStop::TaintedLoad);
                if data_stall && out.steps < FF_MIN_WIN {
                    state.ff_backoff = FF_BACKOFF;
                }
            }
            // Adaptive policy: a site is degenerate when its smoothed
            // *net* win per attempt falls below the transfer break-even —
            // *regardless* of why segments stop. Net, because the transfer
            // back is not free: every logged constant is replayed through
            // the pool (a hash probe each, about the cost of the symbolic
            // step it replaces), so a segment's true saving is its retired
            // instructions minus its intern log. Interpreter regions that
            // mint fresh values per instruction (string builders, say)
            // retire plenty yet save nothing; fork-dense code stalls on
            // `Event` stops (symbolic branches) the fixed policy never
            // penalized. Both look degenerate here, which is exactly the
            // regression this gate exists to remove. Judging the EWMA
            // rather than the single attempt keeps one noisy short segment
            // at a productive site from triggering backoff. Unprofitable
            // sites double their skip interval until a profitable segment
            // resets them; sites that stay degenerate go cold and stop
            // initiating segments entirely, unless they are CFG anchors
            // (loop/dispatch heads), which keep probing at a capped
            // interval so a region that turns concrete is re-discovered.
            FfMode::Adaptive => {
                let gained = out.steps.saturating_sub(out.interns.len() as u64);
                // A new site's EWMA is seeded with its first attempt, so
                // the zero initial value doesn't bias good sites degenerate.
                let fresh = !self.ff_sites.contains_key(&ff_site);
                let site = self.ff_sites.entry(ff_site).or_default();
                site.ewma = if fresh {
                    gained
                } else {
                    (3 * site.ewma + gained) / 4
                };
                let degenerate = site.ewma < FF_PROFIT;
                if degenerate {
                    site.streak += 1;
                    let cap = if site.anchor {
                        FF_ANCHOR_CAP
                    } else {
                        FF_SITE_CAP
                    };
                    site.backoff = if site.backoff == 0 {
                        FF_BACKOFF_BASE
                    } else {
                        (site.backoff * 2).min(cap)
                    };
                    site.skip = site.backoff;
                    if !site.anchor && site.streak >= FF_COLD_STREAK {
                        site.cold = true;
                    }
                } else {
                    site.streak = 0;
                    site.backoff = 0;
                }
                chef_trace::ff_backoff(ff_site, site.backoff as u64);
            }
        }
        if out.steps == 0 {
            return None;
        }
        self.stats.ll_instructions += out.steps;
        self.stats.concrete_ll_executed += out.steps;
        self.stats.fast_forwards += 1;
        chef_trace::ff_retired(ff_site, out.steps);
        if matches!(out.stop, SegStop::TaintedLoad | SegStop::OutOfFuel) {
            self.stats.ff_aborts += 1;
            chef_trace::ff_abort(ff_site);
        }
        state.ll_steps += out.steps;
        // Replay the intern log so every constant the skipped symbolic
        // steps would have interned exists, in the same creation order.
        // After this, the write-backs below intern nothing new.
        for &(w, v) in &out.interns {
            self.pool.constant(w, v);
        }
        for &(addr, b) in &dirty {
            let e = self.pool.constant(8, b as u64);
            state.mem.write_u8(&self.pool, addr, e);
        }
        // Concrete → symbolic: rebuild only what the segment touched. The
        // frame-stack prefix the segment never reached stays in place
        // verbatim. Of the caller frames the segment did work in (the
        // bottom `orig_live` of the working stack), untouched registers
        // still hold their pre-segment expressions; frames pushed by calls
        // inside the segment fill untouched registers with the zero
        // constant `Inst::Call` uses. Written registers round-trip tokens
        // to their expression ids and concrete values to
        // (already-interned) constants.
        let zero = self.pool.constant(64, 0);
        let first = state.frames.len() - 1 - consumed;
        let mut rebuilt = std::mem::take(&mut state.frames);
        let tail: Vec<Frame> = rebuilt.drain(first..).collect();
        for (wi, sf) in seg_frames.iter().enumerate() {
            let old = if wi < out.orig_live {
                Some(&tail[wi])
            } else {
                None
            };
            let regs = match old {
                Some(of) if sf.untouched() => of.regs.clone(),
                _ => sf
                    .regs
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| {
                        if !sf.is_written(i as u32) {
                            match old {
                                Some(of) => of.regs[i],
                                None => zero,
                            }
                        } else if sf.is_sym(i as u32) {
                            self.pool.id_at(v as usize)
                        } else {
                            self.pool.constant(64, v)
                        }
                    })
                    .collect(),
            };
            rebuilt.push(Frame {
                func: sf.func,
                block: sf.block,
                ip: sf.ip,
                regs,
                ret_dst: sf.ret_dst,
            });
        }
        state.frames = rebuilt;
        // Mirror the per-event state updates `exec_intrinsic` performs.
        let mut events = Vec::with_capacity(out.events.len());
        for ev in out.events {
            match ev {
                SegEvent::LogPc(pc, opcode) => {
                    state.hlpc = pc;
                    state.hl_opcode = opcode;
                    state.hl_len += 1;
                    if self.fork_snapshot.is_none() && state.last_fork_loc.is_none() {
                        if state.hl_log.len() < HL_LOG_CAP {
                            state.hl_log.push((pc, opcode));
                        } else {
                            state.hl_log = Vec::new();
                            state.hl_log_overflow = true;
                        }
                    }
                    events.push(FfEvent::LogPc { pc, opcode });
                }
                SegEvent::Guest(g) => {
                    let g = match g {
                        LirGuestEvent::Exception(name) => {
                            state.saw_guest_exception = true;
                            GuestEvent::Exception(name)
                        }
                        LirGuestEvent::EnterCode(c) => GuestEvent::EnterCode(c),
                        LirGuestEvent::Marker(a, b) => GuestEvent::Marker(a, b),
                    };
                    events.push(FfEvent::Guest(g));
                }
            }
        }
        Some(events)
    }
}

/// Converts one symbolic frame into a segment-VM frame: constant registers
/// carry their value, non-constant ones their expression id as an opaque
/// token the exit rebuild round-trips via [`ExprPool::id_at`].
fn to_seg_frame(pool: &ExprPool, f: &Frame) -> SegFrame {
    let mut sf = SegFrame::new(f.func, f.block, f.ip, f.regs.len(), f.ret_dst);
    for (i, &e) in f.regs.iter().enumerate() {
        match pool.as_const(e) {
            Some(v) => sf.regs[i] = v,
            None => {
                sf.regs[i] = e.raw() as u64;
                sf.set_sym(i as u32, true);
            }
        }
    }
    sf
}

#[cfg(test)]
mod tests {
    use super::*;
    use chef_lir::{InputMap, ModuleBuilder};

    /// Runs all states to completion breadth-first, returning terminal
    /// statuses and generated inputs.
    fn explore(prog: &Program, max_steps: u64) -> Vec<(TermStatus, InputMap)> {
        let mut exec = Executor::new(prog, ExecConfig::default());
        let mut queue = vec![exec.initial_state()];
        let mut done = Vec::new();
        let mut steps = 0u64;
        while let Some(mut st) = queue.pop() {
            loop {
                steps += 1;
                if steps > max_steps {
                    panic!("exploration exceeded {max_steps} steps");
                }
                match exec.step(&mut st) {
                    StepEvent::Terminated(t) => {
                        let inputs = st
                            .concretize_inputs(&exec.pool, &mut exec.solver)
                            .unwrap_or_default();
                        done.push((t, inputs));
                        break;
                    }
                    StepEvent::Forked { alternates } => queue.extend(alternates),
                    _ => {}
                }
            }
        }
        done
    }

    #[test]
    fn concrete_program_single_path() {
        let mut mb = ModuleBuilder::new();
        let main = mb.declare("main", 0);
        mb.define(main, |b| {
            let x = b.const_(12);
            let y = b.mul(x, 3u64);
            b.halt(y);
        });
        let prog = mb.finish("main").unwrap();
        let done = explore(&prog, 1000);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].0, TermStatus::Halted(36));
    }

    #[test]
    fn paper_example_forks_two_paths() {
        // Figure 1: x symbolic; x = 3*x; if (x > 10) ...
        let mut mb = ModuleBuilder::new();
        let buf = mb.data_zeroed(1);
        let name = mb.name_id("x");
        let main = mb.declare("main", 0);
        mb.define(main, move |b| {
            b.make_symbolic(buf, 1u64, name);
            let x = b.load_u8(buf);
            let t = b.mul(x, 3u64);
            let c = b.ult(10u64, t);
            b.if_else(c, |b| b.halt(1u64), |b| b.halt(0u64));
        });
        let prog = mb.finish("main").unwrap();
        let done = explore(&prog, 10_000);
        assert_eq!(done.len(), 2, "both branch outcomes explored");
        let mut saw = [false, false];
        for (status, inputs) in &done {
            let x = inputs["x"][0] as u64;
            match status {
                TermStatus::Halted(1) => {
                    assert!(3 * x > 10, "test case must satisfy the path");
                    saw[0] = true;
                }
                TermStatus::Halted(0) => {
                    assert!(3 * x <= 10);
                    saw[1] = true;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(saw[0] && saw[1]);
    }

    #[test]
    fn assume_prunes_paths() {
        let mut mb = ModuleBuilder::new();
        let buf = mb.data_zeroed(1);
        let name = mb.name_id("x");
        let main = mb.declare("main", 0);
        mb.define(main, move |b| {
            b.make_symbolic(buf, 1u64, name);
            let x = b.load_u8(buf);
            let small = b.ult(x, 5u64);
            b.assume(small);
            let c = b.ult(x, 100u64); // implied; must not fork
            b.if_else(c, |b| b.halt(1u64), |b| b.halt(0u64));
        });
        let prog = mb.finish("main").unwrap();
        let done = explore(&prog, 10_000);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].0, TermStatus::Halted(1));
        assert!((done[0].1["x"][0] as u64) < 5);
    }

    #[test]
    fn symbolic_pointer_forks_per_location() {
        // mem[base + (x % 4)] — classic hash-bucket pattern.
        let mut mb = ModuleBuilder::new();
        let table = mb.data_bytes(&[10, 20, 30, 40]);
        let buf = mb.data_zeroed(1);
        let name = mb.name_id("x");
        let main = mb.declare("main", 0);
        mb.define(main, move |b| {
            b.make_symbolic(buf, 1u64, name);
            let x = b.load_u8(buf);
            let idx = b.urem(x, 4u64);
            let addr = b.add(idx, table);
            let v = b.load_u8(addr);
            b.halt(v);
        });
        let prog = mb.finish("main").unwrap();
        let done = explore(&prog, 100_000);
        let mut codes: Vec<u64> = done
            .iter()
            .map(|(s, _)| match s {
                TermStatus::Halted(v) => *v,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        codes.sort_unstable();
        assert_eq!(codes, vec![10, 20, 30, 40], "one path per bucket");
    }

    #[test]
    fn upper_bound_is_concrete_max() {
        let mut mb = ModuleBuilder::new();
        let buf = mb.data_zeroed(1);
        let name = mb.name_id("n");
        let main = mb.declare("main", 0);
        mb.define(main, move |b| {
            b.make_symbolic(buf, 1u64, name);
            let n = b.load_u8(buf);
            let small = b.ult(n, 17u64);
            b.assume(small);
            let ub = b.upper_bound(n);
            b.halt(ub);
        });
        let prog = mb.finish("main").unwrap();
        let done = explore(&prog, 10_000);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].0, TermStatus::Halted(16));
    }

    #[test]
    fn switch_on_symbolic_forks_cases_and_default() {
        let mut mb = ModuleBuilder::new();
        let buf = mb.data_zeroed(1);
        let name = mb.name_id("x");
        let main = mb.declare("main", 0);
        mb.define(main, move |b| {
            b.make_symbolic(buf, 1u64, name);
            let x = b.load_u8(buf);
            let out = b.reg();
            b.switch(
                x,
                &[0, 1],
                |b, v| b.set(out, v + 100),
                |b| b.set(out, 42u64),
            );
            b.halt(out);
        });
        let prog = mb.finish("main").unwrap();
        let done = explore(&prog, 100_000);
        let mut codes: Vec<u64> = done
            .iter()
            .map(|(s, _)| match s {
                TermStatus::Halted(v) => *v,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        codes.sort_unstable();
        assert_eq!(codes, vec![42, 100, 101]);
    }

    #[test]
    fn string_find_path_explosion() {
        // The validateEmail example (Figure 2): scanning a 4-byte symbolic
        // buffer for '@' creates one low-level path per position + not-found.
        let mut mb = ModuleBuilder::new();
        let buf = mb.data_zeroed(4);
        let name = mb.name_id("email");
        let main = mb.declare("main", 0);
        mb.define(main, move |b| {
            b.make_symbolic(buf, 4u64, name);
            let i = b.const_(0);
            let found = b.mov(-1i64);
            b.while_(
                |b| b.ult(i, 4u64),
                |b| {
                    let a = b.add(i, buf);
                    let ch = b.load_u8(a);
                    let hit = b.eq(ch, b'@' as u64);
                    b.if_(hit, |b| {
                        b.set(found, i);
                        b.break_();
                    });
                    let ni = b.add(i, 1u64);
                    b.set(i, ni);
                },
            );
            b.halt(found);
        });
        let prog = mb.finish("main").unwrap();
        let done = explore(&prog, 1_000_000);
        // Positions 0..3 plus "not found" = 5 low-level paths.
        assert_eq!(done.len(), 5);
        for (status, inputs) in &done {
            let email = &inputs["email"];
            match status {
                TermStatus::Halted(p) if *p != u64::MAX => {
                    assert_eq!(email[*p as usize], b'@');
                    for &b in &email[..*p as usize] {
                        assert_ne!(b, b'@');
                    }
                }
                TermStatus::Halted(_) => {
                    assert!(email.iter().all(|&b| b != b'@'));
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    /// Explores a program fully, returning each terminal state's
    /// `(status, recorded trace)`.
    fn explore_traces(prog: &Program) -> Vec<(TermStatus, Vec<u64>)> {
        let mut exec = Executor::new(prog, ExecConfig::default());
        let mut queue = vec![exec.initial_state()];
        let mut done = Vec::new();
        while let Some(mut st) = queue.pop() {
            loop {
                match exec.step(&mut st) {
                    StepEvent::Terminated(t) => {
                        done.push((t, st.trace.clone()));
                        break;
                    }
                    StepEvent::Forked { alternates } => queue.extend(alternates),
                    _ => {}
                }
            }
        }
        done
    }

    /// A program exercising every nondeterministic event class: symbolic
    /// branches, a symbolic pointer, and a symbolic switch.
    fn every_fork_kind_program() -> Program {
        let mut mb = ModuleBuilder::new();
        let table = mb.data_bytes(&[1, 2, 3, 4]);
        let buf = mb.data_zeroed(2);
        let name = mb.name_id("x");
        let main = mb.declare("main", 0);
        mb.define(main, move |b| {
            b.make_symbolic(buf, 2u64, name);
            let x = b.load_u8(buf);
            let idx = b.urem(x, 4u64);
            let addr = b.add(idx, table);
            let v = b.load_u8(addr); // symbolic pointer: 4-way fork
            let addr2 = b.add(buf, 1u64);
            let y = b.load_u8(addr2);
            let out = b.reg();
            b.switch(
                y,
                &[7, 9],
                |b, case| b.set(out, case + 50),
                |b| b.set(out, 0u64),
            ); // symbolic switch: 3-way fork
            let big = b.ult(200u64, y);
            b.if_(big, |b| b.halt(99u64)); // symbolic branch
            let r = b.add(v, out);
            b.halt(r);
        });
        mb.finish("main").unwrap()
    }

    #[test]
    fn prefix_replay_rederives_every_terminal_state() {
        let prog = every_fork_kind_program();
        let done = explore_traces(&prog);
        assert!(done.len() >= 10, "got {} paths", done.len());
        for (status, trace) in &done {
            // Replay the recorded prefix in a completely fresh executor.
            let mut exec = Executor::new(&prog, ExecConfig::default());
            let mut st = exec.seeded_state(trace);
            let replayed_status = loop {
                match exec.step(&mut st) {
                    StepEvent::Terminated(t) => break t,
                    StepEvent::Forked { .. } => {
                        panic!("replay of a full trace must never fork")
                    }
                    _ => {}
                }
            };
            assert_eq!(&replayed_status, status, "replay reaches the same outcome");
            assert_eq!(&st.trace, trace, "replay re-records the identical trace");
            assert!(st.replay.is_empty(), "the whole prefix was consumed");
        }
    }

    #[test]
    fn partial_prefix_replay_resumes_forking_below_the_prefix() {
        let prog = every_fork_kind_program();
        let done = explore_traces(&prog);
        let total = done.len();
        // Replay only the first recorded event of some terminal trace; the
        // subtree below that one decision must be re-explored by forking.
        let (_, trace) = done.iter().find(|(_, t)| t.len() >= 2).unwrap();
        let prefix = &trace[..1];
        let mut exec = Executor::new(&prog, ExecConfig::default());
        let mut queue = vec![exec.seeded_state(prefix)];
        let mut finished = 0usize;
        while let Some(mut st) = queue.pop() {
            loop {
                match exec.step(&mut st) {
                    StepEvent::Terminated(_) => {
                        finished += 1;
                        break;
                    }
                    StepEvent::Forked { alternates } => queue.extend(alternates),
                    _ => {}
                }
            }
        }
        assert!(finished > 1, "subtree below the prefix still forks");
        assert!(finished < total, "a strict subtree, not the whole tree");
    }

    #[test]
    fn log_pc_updates_state() {
        let mut mb = ModuleBuilder::new();
        let main = mb.declare("main", 0);
        mb.define(main, |b| {
            b.log_pc(7u64, 3u64);
            b.halt(0u64);
        });
        let prog = mb.finish("main").unwrap();
        let mut exec = Executor::new(&prog, ExecConfig::default());
        let mut st = exec.initial_state();
        let ev = exec.step(&mut st);
        match ev {
            StepEvent::LogPc { pc: 7, opcode: 3 } => {}
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(st.hlpc, 7);
        assert_eq!(st.hl_len, 1);
    }
}
