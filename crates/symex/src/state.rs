//! Symbolic execution states.

use std::collections::VecDeque;

use chef_lir::{FuncId, InputMap, Program, Reg};
use chef_solver::{ExprId, ExprPool, Model, Solver, VarId};

use crate::mem::SymMem;

/// Unique identifier of a state within one execution session.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct StateId(pub u64);

/// One call frame: position inside a function plus its registers.
#[derive(Clone, Debug)]
pub struct Frame {
    /// Function being executed.
    pub func: FuncId,
    /// Current basic block.
    pub block: usize,
    /// Next instruction index within the block.
    pub ip: usize,
    /// Register file (64-bit expressions).
    pub regs: Vec<ExprId>,
    /// Register in the caller receiving the return value.
    pub ret_dst: Option<Reg>,
}

/// A symbolic input buffer created by `make_symbolic`.
#[derive(Clone, Debug)]
pub struct SymInput {
    /// Buffer name (from the guest's name table).
    pub name: String,
    /// One 8-bit variable per byte.
    pub vars: Vec<VarId>,
}

/// How a path terminated.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TermStatus {
    /// `halt` executed.
    Halted(u64),
    /// `end_symbolic(status)` executed (graceful path end).
    Ended(u64),
    /// `abort(code)` executed — interpreter crash.
    Aborted(u64),
    /// Entry function returned.
    Returned,
    /// An `assume` contradicted the path condition.
    AssumeFailed,
}

/// A complete symbolic execution state: one path through the interpreter.
///
/// Mirrors §2.1 of the paper: a path condition (`path`), a symbolic store
/// (registers + memory), and bookkeeping for Chef's heuristics (current
/// HLPC, consecutive-fork counters for fork weight).
#[derive(Clone, Debug)]
pub struct State {
    /// Identifier, unique per session.
    pub id: StateId,
    /// Call stack; the last frame is active.
    pub frames: Vec<Frame>,
    /// Guest memory.
    pub mem: SymMem,
    /// Path condition: conjunction of width-1 expressions.
    pub path: Vec<ExprId>,
    /// Symbolic inputs created along this path.
    pub inputs: Vec<SymInput>,
    /// Current high-level program counter (last `log_pc` value).
    pub hlpc: u64,
    /// Opcode reported with the current HLPC.
    pub hl_opcode: u64,
    /// Number of high-level instructions executed (log_pc count).
    pub hl_len: u64,
    /// Low-level instructions executed by this state.
    pub ll_steps: u64,
    /// Location `(func, block)` of the most recent fork.
    pub last_fork_loc: Option<(u32, u32)>,
    /// Consecutive forks at `last_fork_loc` (input for fork weight, §3.4).
    pub consecutive_forks: u32,
    /// Generation depth (number of forks since the root).
    pub depth: u32,
    /// Recorded nondeterministic events along this path, in execution
    /// order: branch sides, switch arms, resolved pointer values, and
    /// concretization values. Because execution is deterministic between
    /// events, this sequence is the state's portable identity — replaying
    /// it from the initial state through [`crate::Executor::step`]
    /// re-derives the state in any executor for the same program
    /// (prefix-replay state shipping).
    pub trace: Vec<u64>,
    /// Pending recorded events to consume during prefix replay (front
    /// first). While non-empty, the executor applies recorded decisions
    /// instead of forking or asking the solver to pick values.
    pub replay: VecDeque<u64>,
    /// High-level `(pc, opcode)` events logged while the state is still on
    /// the unique pre-fork prologue path and no fork-point snapshot has
    /// been captured. A snapshot carries this prefix so engines can
    /// rebuild their high-level tree for restored states. Recording stops
    /// as soon as a snapshot exists or the state forks, and is abandoned
    /// (see [`State::hl_log_overflow`]) past a generous bound, so memory
    /// stays bounded even on targets that never reach a capture point.
    pub hl_log: Vec<(u64, u64)>,
    /// Whether the pre-capture log outgrew its cap and was dropped —
    /// vetoes snapshot capture on this path.
    pub hl_log_overflow: bool,
    /// Whether the guest reported an exception on this path. Pre-fork
    /// exceptions veto snapshot capture (the engine-side exception
    /// bookkeeping cannot be reconstructed from a snapshot).
    pub saw_guest_exception: bool,
    /// Fast-forward backoff: while positive, [`crate::Executor`] skips
    /// concrete fast-forward attempts for this state (decrementing per
    /// skipped attempt). Set after an attempt yields a degenerate segment,
    /// so states parked at a symbolic-consuming hot spot don't pay the
    /// transfer cost on every slice iteration. Cloned on fork — a child
    /// parked at the same spot inherits the hint.
    pub ff_backoff: u32,
}

impl State {
    /// Creates the initial state for `prog`, loading its data segments.
    pub fn initial(pool: &mut ExprPool, prog: &Program) -> Self {
        let mut mem = SymMem::new(pool);
        for seg in &prog.data {
            mem.write_bytes(pool, seg.addr, &seg.bytes);
        }
        let entry = prog.func(prog.entry);
        let zero = pool.constant(64, 0);
        State {
            id: StateId(0),
            frames: vec![Frame {
                func: prog.entry,
                block: 0,
                ip: 0,
                regs: vec![zero; entry.n_regs as usize],
                ret_dst: None,
            }],
            mem,
            path: Vec::new(),
            inputs: Vec::new(),
            hlpc: 0,
            hl_opcode: 0,
            hl_len: 0,
            ll_steps: 0,
            last_fork_loc: None,
            consecutive_forks: 0,
            depth: 0,
            trace: Vec::new(),
            replay: VecDeque::new(),
            hl_log: Vec::new(),
            hl_log_overflow: false,
            saw_guest_exception: false,
            ff_backoff: 0,
        }
    }

    /// Pops the next recorded event if the state is replaying a prefix.
    pub fn take_replay(&mut self) -> Option<u64> {
        self.replay.pop_front()
    }

    /// Whether the state is still consuming a recorded prefix.
    pub fn is_replaying(&self) -> bool {
        !self.replay.is_empty()
    }

    /// The active frame.
    ///
    /// # Panics
    ///
    /// Panics if the state has terminated (no frames).
    pub fn frame(&self) -> &Frame {
        self.frames.last().expect("state has no frames")
    }

    /// The active frame, mutably.
    ///
    /// # Panics
    ///
    /// Panics if the state has terminated (no frames).
    pub fn frame_mut(&mut self) -> &mut Frame {
        self.frames.last_mut().expect("state has no frames")
    }

    /// Low-level program counter of the active frame: `(func, block)`.
    pub fn ll_loc(&self) -> (u32, u32) {
        let f = self.frame();
        (f.func.0, f.block as u32)
    }

    /// Solves the path condition and maps the model back to concrete input
    /// bytes, producing a replayable test case.
    ///
    /// Returns `None` if the path condition is unsatisfiable (should not
    /// happen for states produced by feasibility-checked forking).
    pub fn concretize_inputs(&self, pool: &ExprPool, solver: &mut Solver) -> Option<InputMap> {
        match solver.check(pool, &self.path) {
            chef_solver::SatResult::Sat(model) => Some(self.inputs_from_model(&model)),
            chef_solver::SatResult::Unsat | chef_solver::SatResult::Unknown => None,
        }
    }

    /// Solves the path condition into the *canonical* concrete inputs: each
    /// input byte is pinned, in declaration order, to the smallest value
    /// feasible given the path and the bytes already pinned.
    ///
    /// Unlike [`State::concretize_inputs`], whose bytes come from whatever
    /// model the solver's caches happen to produce, the canonical inputs
    /// are a pure function of the path-condition semantics — so the same
    /// explored path yields byte-identical test cases in any executor.
    /// That property is what lets a parallel fleet (`chef-fleet`) compare
    /// and deduplicate test cases generated by workers with independent
    /// expression pools.
    ///
    /// One caveat: a sub-query hitting the solver's conflict budget
    /// (`Unknown`) can perturb the minimization, and whether that happens
    /// may depend on solver cache history. The pinned assignment is
    /// therefore re-checked by direct evaluation; if it does not satisfy
    /// the path (possible only under `Unknown`), the witness model's
    /// inputs are returned instead — always valid, possibly non-minimal.
    ///
    /// Returns `None` if the path condition is unsatisfiable.
    pub fn concretize_inputs_canonical(
        &self,
        pool: &mut ExprPool,
        solver: &mut Solver,
    ) -> Option<InputMap> {
        let model = match solver.check(pool, &self.path) {
            chef_solver::SatResult::Sat(m) => m,
            chef_solver::SatResult::Unsat | chef_solver::SatResult::Unknown => return None,
        };
        let mut query = self.path.clone();
        // While every pin so far matches `model`, the model itself witnesses
        // feasibility of further model-valued pins — so a byte the model
        // already sets to 0 (the common, unconstrained case) is pinned
        // without any solver query.
        let mut model_valid = true;
        let mut out = InputMap::new();
        for input in &self.inputs {
            let mut bytes = Vec::with_capacity(input.vars.len());
            for &var in &input.vars {
                let e = pool.var_expr(var);
                let w = pool.width(e);
                let mv = model.get(var);
                let zero = pool.constant(w, 0);
                let eq0 = pool.eq(e, zero);
                if model_valid && mv == 0 {
                    query.push(eq0);
                    bytes.push(0);
                    continue;
                }
                // Try the minimum directly before per-bit minimization.
                query.push(eq0);
                if solver.is_feasible(pool, &query) {
                    bytes.push(0);
                    model_valid = model_valid && mv == 0;
                    continue;
                }
                query.pop();
                // The witness model proves the path feasible, so a sub-query
                // lost to the conflict budget must not drop the test.
                let Some(v) = solver.min_value(pool, e, &query) else {
                    return Some(self.inputs_from_model(&model));
                };
                let c = pool.constant(w, v);
                let eq = pool.eq(e, c);
                query.push(eq);
                bytes.push(v as u8);
                model_valid = model_valid && mv == v;
            }
            out.insert(input.name.clone(), bytes);
        }
        // Exact, solver-free validation of the pinned assignment: evaluate
        // the path condition under it. All path variables come from
        // `make_symbolic`, so `out` is a total assignment.
        let mut pinned = Model::new();
        for input in &self.inputs {
            for (&var, &byte) in input.vars.iter().zip(&out[&input.name]) {
                pinned.set(var, byte as u64);
            }
        }
        if pinned.satisfies(pool, &self.path) {
            Some(out)
        } else {
            Some(self.inputs_from_model(&model))
        }
    }

    /// Maps an existing model to concrete input bytes.
    pub fn inputs_from_model(&self, model: &Model) -> InputMap {
        let mut out = InputMap::new();
        for input in &self.inputs {
            let bytes: Vec<u8> = input.vars.iter().map(|&v| model.get(v) as u8).collect();
            out.insert(input.name.clone(), bytes);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chef_lir::ModuleBuilder;

    fn tiny_prog() -> Program {
        let mut mb = ModuleBuilder::new();
        let main = mb.declare("main", 0);
        mb.define(main, |b| b.halt(0u64));
        mb.finish("main").unwrap()
    }

    #[test]
    fn initial_state_loads_data() {
        let mut mb = ModuleBuilder::new();
        let addr = mb.data_bytes(b"abc");
        let main = mb.declare("main", 0);
        mb.define(main, |b| b.halt(0u64));
        let prog = mb.finish("main").unwrap();
        let mut pool = ExprPool::new();
        let st = State::initial(&mut pool, &prog);
        assert_eq!(pool.as_const(st.mem.read_u8(addr)), Some(b'a' as u64));
    }

    #[test]
    fn concretize_inputs_solves_path() {
        let prog = tiny_prog();
        let mut pool = ExprPool::new();
        let mut solver = Solver::new();
        let mut st = State::initial(&mut pool, &prog);
        let v = pool.fresh_var("x_0", 8);
        st.inputs.push(SymInput {
            name: "x".into(),
            vars: vec![pool.as_var(v).unwrap()],
        });
        let c = pool.constant(8, 65);
        let eq = pool.eq(v, c);
        st.path.push(eq);
        let inputs = st.concretize_inputs(&pool, &mut solver).unwrap();
        assert_eq!(inputs["x"], vec![65]);
    }

    #[test]
    fn fork_bookkeeping_defaults() {
        let prog = tiny_prog();
        let mut pool = ExprPool::new();
        let st = State::initial(&mut pool, &prog);
        assert_eq!(st.consecutive_forks, 0);
        assert!(st.last_fork_loc.is_none());
        assert_eq!(st.depth, 0);
    }
}
