//! Property tests for the symbolic executor: for random branching programs
//! over a symbolic byte, (1) every generated test case replays concretely
//! to the path's recorded exit code, and (2) the symbolic exploration
//! discovers exactly the set of outcomes that brute-force concrete
//! enumeration finds.

use std::collections::BTreeSet;

use proptest::prelude::*;

use chef_lir::{run_concrete, ConcreteStatus, InputMap, ModuleBuilder, Program};
use chef_symex::{ExecConfig, Executor, StepEvent, TermStatus};

/// A tiny decision-program recipe over one symbolic byte: a chain of
/// threshold tests, each exiting with a distinct code, else falling through.
#[derive(Clone, Debug)]
struct Chain {
    thresholds: Vec<u8>,
    op_kinds: Vec<u8>,
}

fn chain() -> impl Strategy<Value = Chain> {
    (
        prop::collection::vec(any::<u8>(), 1..6),
        prop::collection::vec(0u8..3, 1..6),
    )
        .prop_map(|(thresholds, op_kinds)| Chain {
            thresholds,
            op_kinds,
        })
}

fn build(chain: &Chain) -> Program {
    let mut mb = ModuleBuilder::new();
    let buf = mb.data_zeroed(1);
    let name = mb.name_id("x");
    let main = mb.declare("main", 0);
    let c = chain.clone();
    mb.define(main, move |b| {
        b.make_symbolic(buf, 1u64, name);
        let x = b.load_u8(buf);
        for (i, (&t, &k)) in c
            .thresholds
            .iter()
            .zip(c.op_kinds.iter().cycle())
            .enumerate()
        {
            let cond = match k % 3 {
                0 => b.ult(x, t as u64),
                1 => b.eq(x, t as u64),
                _ => {
                    let m = b.and(x, 0x0fu64);
                    b.eq(m, (t & 0x0f) as u64)
                }
            };
            b.if_(cond, move |b| b.halt((i + 1) as u64));
        }
        b.halt(0u64);
    });
    mb.finish("main").unwrap()
}

/// Concrete oracle: run all 256 inputs.
fn oracle(prog: &Program) -> BTreeSet<u64> {
    let mut outcomes = BTreeSet::new();
    for v in 0..=255u8 {
        let mut inputs = InputMap::new();
        inputs.insert("x".into(), vec![v]);
        match run_concrete(prog, &inputs, 100_000).status {
            ConcreteStatus::Halted(c) => {
                outcomes.insert(c);
            }
            other => panic!("oracle run ended with {other:?}"),
        }
    }
    outcomes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn symbolic_exploration_is_sound_and_complete(c in chain()) {
        let prog = build(&c);
        let want = oracle(&prog);
        let mut exec = Executor::new(&prog, ExecConfig::default());
        let mut queue = vec![exec.initial_state()];
        let mut found = BTreeSet::new();
        let mut steps = 0u64;
        while let Some(mut st) = queue.pop() {
            loop {
                steps += 1;
                prop_assert!(steps < 2_000_000, "exploration diverged");
                match exec.step(&mut st) {
                    StepEvent::Terminated(TermStatus::Halted(code)) => {
                        // Soundness: the generated input replays to the code.
                        let inputs = st
                            .concretize_inputs(&exec.pool, &mut exec.solver)
                            .expect("feasible path has a model");
                        let out = run_concrete(&prog, &inputs, 100_000);
                        prop_assert_eq!(
                            out.status,
                            ConcreteStatus::Halted(code),
                            "replay diverged"
                        );
                        found.insert(code);
                        break;
                    }
                    StepEvent::Terminated(other) => {
                        prop_assert!(false, "unexpected termination {other:?}");
                        break;
                    }
                    StepEvent::Forked { alternates } => queue.extend(alternates),
                    _ => {}
                }
            }
        }
        // Completeness: exactly the oracle's outcome set.
        prop_assert_eq!(found, want);
    }
}
