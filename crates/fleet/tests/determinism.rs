//! Fleet determinism: a parallel exploration must generate exactly the
//! test suite of a single-threaded one — same canonical input bytes, same
//! high-level path count — regardless of worker count, scheduling, or
//! strategy portfolio. These are the acceptance tests of the work-shipping
//! design: prefix replay plus canonical input concretization make the test
//! suite a pure function of the program.

use std::collections::BTreeSet;

use chef_core::{Chef, ChefConfig};
use chef_fleet::{run_fleet, FleetConfig, FleetReport};
use chef_lir::Program;
use chef_minipy::{build_program, compile, InterpreterOptions, SymbolicTest};

type InputSet = BTreeSet<Vec<(String, Vec<u8>)>>;

fn fleet_inputs(r: &FleetReport) -> InputSet {
    r.tests.iter().map(|t| t.canonical_key()).collect()
}

fn chef_inputs(r: &chef_core::Report) -> InputSet {
    r.tests.iter().map(|t| t.canonical_key()).collect()
}

/// A fork-heavy MiniPy protocol parser (several outcomes, nested solving).
fn minipy_target() -> Program {
    let src = r#"
def parse(msg):
    if len(msg) < 2:
        raise TruncatedError
    kind = msg[0]
    if kind == "G":
        if msg[1] == "0":
            return 1
        return 2
    if kind == "P":
        return 3
    raise UnknownKindError
"#;
    let module = compile(src).unwrap();
    let test = SymbolicTest::new("parse").sym_str("msg", 3);
    build_program(&module, &InterpreterOptions::all(), &test).unwrap()
}

/// A MiniLua bracket matcher with an error path.
fn minilua_target() -> Program {
    let src = r#"
function f(s)
  if sub(s, 1, 1) == "{" then
    if sub(s, 2, 2) == "}" then
      return 2
    end
    error("unclosed")
  end
  return 0
end
"#;
    let module = chef_minilua::compile(src).unwrap();
    let test = SymbolicTest::new("f").sym_str("s", 2);
    build_program(&module, &InterpreterOptions::all(), &test).unwrap()
}

fn config() -> ChefConfig {
    // Generous budget: both targets explore completely well within it, so
    // the generated set is budget-independent.
    ChefConfig {
        max_ll_instructions: 5_000_000,
        ..ChefConfig::default()
    }
}

#[test]
fn minipy_fleet_of_four_matches_single_threaded_run() {
    let prog = minipy_target();
    let single = Chef::new(&prog, config()).run();
    let one = run_fleet(
        &prog,
        FleetConfig {
            jobs: 1,
            base: config(),
            ..Default::default()
        },
    );
    let four = run_fleet(
        &prog,
        FleetConfig {
            jobs: 4,
            base: config(),
            ..Default::default()
        },
    );

    let want = chef_inputs(&single);
    assert!(!want.is_empty());
    assert_eq!(fleet_inputs(&one), want, "jobs=1 equals Chef::run");
    assert_eq!(fleet_inputs(&four), want, "jobs=4 equals Chef::run");
    assert_eq!(four.hl_paths, single.hl_paths);
    assert_eq!(four.hangs, single.hangs);
    assert_eq!(four.crashes, single.crashes);
    assert_eq!(four.per_worker.len(), 4);
    assert_eq!(
        four.exceptions, single.exceptions,
        "exception census survives the merge"
    );
}

#[test]
fn minilua_fleet_of_four_matches_single_threaded_run() {
    let prog = minilua_target();
    let single = Chef::new(&prog, config()).run();
    let four = run_fleet(
        &prog,
        FleetConfig {
            jobs: 4,
            base: config(),
            ..Default::default()
        },
    );
    let want = chef_inputs(&single);
    assert!(!want.is_empty());
    assert_eq!(
        fleet_inputs(&four),
        want,
        "jobs=4 equals Chef::run on minilua"
    );
    assert_eq!(four.hl_paths, single.hl_paths);
}

#[test]
fn portfolio_mode_matches_too() {
    // Different strategies per worker change the exploration *order*, never
    // the explored *set* (the budget does not bind on this target).
    let prog = minipy_target();
    let single = Chef::new(&prog, config()).run();
    let portfolio = run_fleet(
        &prog,
        FleetConfig {
            jobs: 4,
            base: config(),
            portfolio: Some(FleetConfig::default_portfolio()),
            ..Default::default()
        },
    );
    assert_eq!(fleet_inputs(&portfolio), chef_inputs(&single));
    // Workers genuinely ran different strategies.
    let names: BTreeSet<&str> = portfolio.per_worker.iter().map(|r| r.strategy).collect();
    assert!(
        names.len() >= 2,
        "portfolio spread strategies across workers: {names:?}"
    );
}

#[test]
fn fleet_wide_max_tests_cap_holds() {
    // Rounds in flight may overshoot the shared counter; the merged suite
    // must still respect the single-engine cap.
    let prog = minipy_target();
    let base = ChefConfig {
        max_tests: Some(2),
        ..config()
    };
    let capped = run_fleet(
        &prog,
        FleetConfig {
            jobs: 4,
            base,
            ..Default::default()
        },
    );
    assert!(capped.tests.len() <= 2, "got {}", capped.tests.len());
    assert!(!capped.tests.is_empty());
}

#[test]
fn fleet_runs_are_reproducible() {
    let prog = minipy_target();
    let cfg = FleetConfig {
        jobs: 4,
        base: config(),
        ..Default::default()
    };
    let a = run_fleet(&prog, cfg.clone());
    let b = run_fleet(&prog, cfg);
    assert_eq!(fleet_inputs(&a), fleet_inputs(&b));
    assert_eq!(a.hl_paths, b.hl_paths);
}

#[test]
fn merged_statistics_cover_all_workers() {
    let prog = minipy_target();
    let four = run_fleet(
        &prog,
        FleetConfig {
            jobs: 4,
            base: config(),
            ..Default::default()
        },
    );
    let summed: u64 = four
        .per_worker
        .iter()
        .map(|r| r.exec_stats.ll_instructions)
        .sum();
    assert_eq!(four.exec_stats.ll_instructions, summed);
    let queries: u64 = four.per_worker.iter().map(|r| r.solver_stats.queries).sum();
    assert_eq!(four.solver_stats.queries, queries);
    assert!(four.solver_stats.sat_time <= four.per_worker.iter().map(|r| r.elapsed).sum());
    // seeds_shipped is scheduling-dependent (a fast first worker can finish
    // the target before anyone registers as idle), so only check that the
    // merged counter agrees with the per-worker reports.
    let exported: u64 = four.per_worker.iter().map(|r| r.seeds_exported).sum();
    assert_eq!(four.seeds_shipped, exported);
}

/// Budget-sliced resumable runs: repeatedly running with a small budget and
/// feeding the returned frontier back must, across all slices, generate
/// exactly the test set of one uninterrupted run — the invariant
/// `chef-serve` checkpointing is built on.
#[test]
fn budget_sliced_runs_union_to_the_full_set() {
    use chef_core::WorkSeed;
    use chef_fleet::run_fleet_with;

    // A scan loop over the whole buffer: enough post-fork-point breadth
    // (dozens of low-level paths) that small budget slices genuinely
    // interrupt the run several times — even now that resumed seeds
    // restore at the fork point for free instead of replaying the
    // prologue, which used to pad every slice.
    let src = r#"
def parse(msg):
    n = 0
    i = 0
    while i < 4:
        if msg[i] == "@":
            n = n + 1
        i = i + 1
    kind = msg[0]
    if kind == "A":
        if msg[1] == "1":
            return 7
        return 3
    if kind == "B":
        return 5
    return n
"#;
    let module = compile(src).unwrap();
    let test = SymbolicTest::new("parse").sym_str("msg", 4);
    let prog = build_program(&module, &InterpreterOptions::all(), &test).unwrap();
    let want = chef_inputs(&Chef::new(&prog, config()).run());

    let mut seeds = vec![WorkSeed::root()];
    let mut got = InputSet::new();
    let mut slices = 0;
    loop {
        let cfg = ChefConfig {
            // Far below the ~29k-instruction full exploration, comfortably
            // above the ~600-instruction prologue (the first slice must
            // reach the fork point for the snapshot to be captured) and
            // above the frontier's per-slice suffix-replay cost (so every
            // slice makes durable progress).
            max_ll_instructions: 6_000,
            ..config()
        };
        let outcome = run_fleet_with(
            &prog,
            FleetConfig {
                jobs: 1,
                base: cfg,
                ..Default::default()
            },
            seeds,
            None,
        );
        got.extend(fleet_inputs(&outcome.report));
        assert!(!outcome.paused, "no pause was requested");
        if outcome.frontier.is_empty() {
            break;
        }
        seeds = outcome.frontier;
        slices += 1;
        assert!(slices < 500, "sliced exploration must converge");
    }
    assert!(slices >= 2, "the budget actually sliced the run");
    assert_eq!(got, want, "slices union to the uninterrupted test set");
}

/// A pause request stops the fleet early and exports a frontier; resuming
/// from it completes the exploration with nothing lost or duplicated.
#[test]
fn pause_and_resume_loses_nothing() {
    use chef_fleet::{run_fleet_with, FleetControl};

    let prog = minilua_target();
    let want = chef_inputs(&Chef::new(&prog, config()).run());

    let ctl = FleetControl::new();
    ctl.request_pause(); // pause immediately: worst case, nothing explored
    let first = run_fleet_with(
        &prog,
        FleetConfig {
            jobs: 2,
            base: config(),
            ..Default::default()
        },
        vec![chef_core::WorkSeed::root()],
        Some(&ctl),
    );
    assert!(first.paused);
    assert!(
        !first.frontier.is_empty(),
        "a paused run must export its pending work"
    );

    let resumed = run_fleet_with(
        &prog,
        FleetConfig {
            jobs: 2,
            base: config(),
            ..Default::default()
        },
        first.frontier,
        None,
    );
    assert!(!resumed.paused);
    assert!(resumed.frontier.is_empty(), "resumed run completes");
    let mut got = fleet_inputs(&first.report);
    got.extend(fleet_inputs(&resumed.report));
    assert_eq!(got, want, "pause/resume preserves the canonical test set");
}
