//! The acceptance property of fork-point snapshots: restoring a shipped
//! seed from the snapshot and replaying only its decision suffix must
//! produce **byte-identical** canonical test sets to replaying the full
//! prefix from instruction 0 — on MiniPy and MiniLua targets exercising
//! every fork kind (symbolic branches, symbolic pointers from symbolic
//! indexing, multi-way dispatch) — while actually skipping the interpreter
//! prologue. Full-prefix replay is the equivalence oracle here, exactly as
//! the fallback path documents.

use std::collections::BTreeSet;
use std::sync::Arc;

use proptest::prelude::*;

use chef_core::{Chef, ChefConfig, EngineStatus, Report, StrategyKind, WorkSeed};
use chef_lir::Program;
use chef_minipy::{build_program, compile, InterpreterOptions, SymbolicTest};

type InputSet = BTreeSet<Vec<(String, Vec<u8>)>>;

fn inputs(r: &Report) -> InputSet {
    r.tests.iter().map(|t| t.canonical_key()).collect()
}

fn sigs(r: &Report) -> BTreeSet<u64> {
    r.tests.iter().map(|t| t.hl_sig).collect()
}

/// MiniPy: symbolic string scanning (low-level path explosion), a symbolic
/// integer driving indexing (symbolic-pointer forks in the interpreter's
/// string access), and a dispatch chain (branch forks).
fn minipy_target() -> Program {
    let src = r#"
def parse(msg, k):
    c = msg[k]
    if c == "@":
        return 9
    kind = msg[0]
    if kind == "A":
        if msg[1] == "1":
            return 1
        return 2
    if kind == "B":
        return 3
    raise UnknownKindError
"#;
    let module = compile(src).unwrap();
    let test = SymbolicTest::new("parse")
        .sym_str("msg", 3)
        .sym_int("k", 0, 2);
    build_program(&module, &InterpreterOptions::all(), &test).unwrap()
}

/// MiniLua: branches over substring comparisons plus an error path.
fn minilua_target() -> Program {
    let src = r#"
function f(s)
  if sub(s, 1, 1) == "{" then
    if sub(s, 2, 2) == "}" then
      return 2
    end
    error("unclosed")
  end
  if sub(s, 1, 1) == "[" then
    return 1
  end
  return 0
end
"#;
    let module = chef_minilua::compile(src).unwrap();
    let test = SymbolicTest::new("f").sym_str("s", 2);
    build_program(&module, &InterpreterOptions::all(), &test).unwrap()
}

fn config(strategy: StrategyKind, seed: u64) -> ChefConfig {
    ChefConfig {
        strategy,
        seed,
        max_ll_instructions: 20_000_000, // both targets complete well within
        ..ChefConfig::default()
    }
}

fn strip(seed: &WorkSeed) -> WorkSeed {
    WorkSeed::from_choices(seed.choices.clone())
}

/// Splits an exploration at an arbitrary point, ships some seeds, and
/// checks: (1) snapshot-restored runs and full-replay runs of the same
/// seeds generate byte-identical canonical test sets and high-level path
/// signatures; (2) the snapshot runs actually restored (and skipped
/// prologue work); (3) nothing is lost against the unsplit reference run.
fn check_target(prog: &Program, strategy: StrategyKind, rng_seed: u64, extra_rounds: usize) {
    let reference = Chef::new(prog, config(strategy, rng_seed)).run();
    let want = inputs(&reference);
    assert!(!want.is_empty());

    let mut chef = Chef::new(prog, config(strategy, rng_seed));
    while chef.live_count() < 2 {
        assert_eq!(chef.step_round(), EngineStatus::Running);
    }
    for _ in 0..extra_rounds {
        if chef.step_round() != EngineStatus::Running {
            break;
        }
    }
    if chef.live_count() < 2 {
        // The extra rounds drained the frontier (or finished the target);
        // take the first fork as the split point instead.
        chef = Chef::new(prog, config(strategy, rng_seed));
        while chef.live_count() < 2 {
            assert_eq!(chef.step_round(), EngineStatus::Running);
        }
    }
    let seeds = chef.export_work(2);
    assert!(!seeds.is_empty(), "a forked engine can export work");
    let snapshot: Arc<_> = chef
        .fork_snapshot()
        .expect("make_symbolic ran, so a snapshot was captured");
    assert!(snapshot.ll_steps > 0, "the prologue has nonzero length");
    for seed in &seeds {
        assert_eq!(
            seed.snapshot_fp,
            Some(snapshot.fingerprint),
            "exported seeds reference the fork-point snapshot"
        );
    }
    let rest = chef.run();

    let mut shipped_union = InputSet::new();
    for seed in &seeds {
        // Snapshot path: restore + suffix replay.
        let via_snapshot = Chef::new(prog, config(strategy, rng_seed)).run_from(seed);
        assert_eq!(
            via_snapshot.exec_stats.snapshot_restores, 1,
            "the seed was materialized from the snapshot"
        );
        assert_eq!(
            via_snapshot.exec_stats.prologue_ll_skipped, snapshot.ll_steps,
            "restore skipped exactly the prologue"
        );

        assert_eq!(via_snapshot.exec_stats.full_replays, 0);

        // Oracle: full prefix replay of the identical decision sequence.
        let via_replay = Chef::new(prog, config(strategy, rng_seed)).run_from(&strip(seed));
        assert_eq!(via_replay.exec_stats.snapshot_restores, 0);
        assert_eq!(via_replay.exec_stats.full_replays, 1);

        assert_eq!(
            inputs(&via_snapshot),
            inputs(&via_replay),
            "snapshot restore and full replay generate byte-identical tests"
        );
        assert_eq!(
            sigs(&via_snapshot),
            sigs(&via_replay),
            "and identical high-level path signatures"
        );
        // The whole point: the restored run does strictly less low-level
        // work than the replay-from-zero run.
        assert!(
            via_snapshot.exec_stats.ll_instructions < via_replay.exec_stats.ll_instructions,
            "snapshot run must skip prologue instructions ({} vs {})",
            via_snapshot.exec_stats.ll_instructions,
            via_replay.exec_stats.ll_instructions
        );
        shipped_union.extend(inputs(&via_snapshot));
    }

    let mut got = inputs(&rest);
    got.extend(shipped_union);
    assert_eq!(got, want, "shipping via snapshots loses nothing");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    #[test]
    fn minipy_snapshot_suffix_equals_full_replay(
        strategy in prop_oneof![
            Just(StrategyKind::CupaPath),
            Just(StrategyKind::CupaCoverage),
            Just(StrategyKind::Random),
            Just(StrategyKind::Dfs),
        ],
        rng_seed in 0u64..1000,
        extra_rounds in 0usize..6,
    ) {
        check_target(&minipy_target(), strategy, rng_seed, extra_rounds);
    }

    #[test]
    fn minilua_snapshot_suffix_equals_full_replay(
        strategy in prop_oneof![Just(StrategyKind::CupaPath), Just(StrategyKind::Dfs)],
        rng_seed in 0u64..1000,
        extra_rounds in 0usize..6,
    ) {
        check_target(&minilua_target(), strategy, rng_seed, extra_rounds);
    }
}

/// Every fork kind at the LIR level (branch, symbolic pointer, symbolic
/// switch): ship every state of a partially-explored tree both ways and
/// compare, so the suffix-replay paths through `Branch`, `Switch`, and
/// pointer resolution are each exercised against the oracle.
#[test]
fn every_fork_kind_ships_identically_both_ways() {
    use chef_lir::ModuleBuilder;

    let mut mb = ModuleBuilder::new();
    let table = mb.data_bytes(&[1, 2, 3, 4]);
    let buf = mb.data_zeroed(2);
    let name = mb.name_id("x");
    let main = mb.declare("main", 0);
    mb.define(main, move |b| {
        b.make_symbolic(buf, 2u64, name);
        b.log_pc(1u64, 0u64);
        let x = b.load_u8(buf);
        let idx = b.urem(x, 4u64);
        let addr = b.add(idx, table);
        let v = b.load_u8(addr); // symbolic pointer: 4-way fork
        let addr2 = b.add(buf, 1u64);
        let y = b.load_u8(addr2);
        let out = b.reg();
        b.switch(
            y,
            &[7, 9],
            |b, case| b.set(out, case + 50),
            |b| b.set(out, 0u64),
        ); // symbolic switch: 3-way fork
        b.log_pc(2u64, 1u64);
        let big = b.ult(200u64, y);
        b.if_(big, |b| b.halt(99u64)); // symbolic branch
        let r = b.add(v, out);
        b.halt(r);
    });
    let prog = mb.finish("main").unwrap();

    let reference = Chef::new(&prog, config(StrategyKind::CupaPath, 0)).run();
    let want = inputs(&reference);

    let mut chef = Chef::new(&prog, config(StrategyKind::CupaPath, 0));
    while chef.live_count() < 4 {
        assert_eq!(chef.step_round(), EngineStatus::Running);
    }
    let seeds = chef.drain_frontier();
    assert!(seeds.len() >= 4);

    let mut via_snapshot = InputSet::new();
    let mut via_replay = InputSet::new();
    for seed in &seeds {
        assert!(seed.snapshot.is_some(), "frontier seeds carry the snapshot");
        let a = Chef::new(&prog, config(StrategyKind::CupaPath, 0)).run_from(seed);
        assert_eq!(a.exec_stats.snapshot_restores, 1);
        via_snapshot.extend(inputs(&a));
        let b = Chef::new(&prog, config(StrategyKind::CupaPath, 0)).run_from(&strip(seed));
        assert_eq!(b.exec_stats.snapshot_restores, 0);
        via_replay.extend(inputs(&b));
    }
    assert_eq!(via_snapshot, via_replay);
    assert_eq!(via_snapshot, want, "the frontier partitions the whole tree");
}
