//! # chef-fleet — parallel, work-sharing symbolic execution
//!
//! Runs one Chef exploration across N worker threads. A worker owns a full
//! engine stack ([`chef_core::Chef`] with its own expression pool, solver,
//! and high-level tree), because expression ids and solver caches are only
//! valid within one pool — states cannot migrate directly. What migrates
//! instead is a [`WorkSeed`]: the recorded sequence of nondeterministic
//! decisions from the program root (see [`chef_symex::State::trace`]),
//! paired with a reference to the fleet's shared fork-point [`Snapshot`].
//! A receiving worker restores the snapshot — skipping the interpreter
//! prologue — and replays only the post-snapshot decision suffix (full
//! prefix replay remains the fallback when no snapshot exists). The
//! snapshot ships once per fleet: the first worker to execute
//! `make_symbolic` captures it, and every seed thereafter carries an
//! `Arc` to the same image. This is the Cloud9-style job shipping the
//! Chef authors used to scale out, with the paper's fork-point snapshot
//! discipline on top: ship the path *and* the snapshot, never the
//! prologue.
//!
//! The coordinator provides:
//!
//! - a shared injector queue seeded with the root job; idle workers steal
//!   exported fork prefixes from busy ones (work stealing),
//! - global deduplication of generated test cases by canonical input
//!   bytes, so the merged suite equals a single-threaded run's,
//! - merged coverage, timelines, and per-worker executor/solver statistics
//!   ([`FleetReport`]),
//! - a portfolio mode running a different [`StrategyKind`] on each worker
//!   against a shared coverage map (workers exchange high-level CFG edges,
//!   sharpening each other's §3.4 weights).
//!
//! # Examples
//!
//! A fleet of four workers generates exactly the test suite of a
//! single-threaded run, deduplicated across workers:
//!
//! ```
//! use chef_core::ChefConfig;
//! use chef_fleet::{run_fleet, FleetConfig};
//! use chef_minipy::{build_program, compile, InterpreterOptions, SymbolicTest};
//!
//! let src = "def f(s):\n    if s == \"ok\":\n        return 1\n    return 0\n";
//! let module = compile(src)?;
//! let test = SymbolicTest::new("f").sym_str("s", 2);
//! let prog = build_program(&module, &InterpreterOptions::all(), &test)?;
//!
//! let config = FleetConfig { jobs: 4, base: ChefConfig::default(), ..Default::default() };
//! let report = run_fleet(&prog, config);
//! assert!(report.tests.iter().any(|t| t.inputs["s"] == b"ok"));
//! assert_eq!(report.per_worker.len(), 4);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::collections::{BTreeMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use chef_core::{
    Chef, ChefConfig, EngineStatus, Report, Snapshot, StrategyKind, TestCase, WorkSeed,
};
use chef_lir::Program;
use chef_solver::SolverStats;
use chef_symex::ExecStats;

/// Configuration of a fleet exploration.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Number of worker threads.
    pub jobs: usize,
    /// Per-worker engine configuration. `max_ll_instructions` and
    /// `max_tests` are treated as *fleet-wide* budgets (matching the
    /// single-engine semantics; the merged, deduplicated suite is capped
    /// at `max_tests`); the RNG seed is diversified per worker.
    pub base: ChefConfig,
    /// Portfolio mode: run these strategies round-robin across workers
    /// (worker `i` gets `portfolio[i % len]`) against a shared coverage
    /// map. `None` runs `base.strategy` everywhere.
    pub portfolio: Option<Vec<StrategyKind>>,
    /// Maximum seeds a busy worker exports per sharing opportunity.
    pub steal_batch: usize,
    /// Low-level instructions between coverage-map synchronizations
    /// (portfolio mode only).
    pub sync_interval_ll: u64,
    /// High-level CFG edges every worker absorbs before exploring —
    /// `chef-serve`'s corpus warm start: edges recovered by concretely
    /// replaying stored tests pre-populate the §3.4 coverage weights.
    pub seed_cfg_edges: Vec<(u64, u64, u64)>,
    /// Learned fast-forward site table every worker absorbs before
    /// exploring — the adaptive gate's warm start, so a resumed serve
    /// session does not re-pay the discovery cost of cold regions.
    pub seed_ff_sites: chef_symex::FfSiteTable,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            jobs: 1,
            base: ChefConfig::default(),
            portfolio: None,
            steal_batch: 4,
            sync_interval_ll: 25_000,
            seed_cfg_edges: Vec::new(),
            seed_ff_sites: Vec::new(),
        }
    }
}

/// External control surface of a resumable fleet run (see
/// [`run_fleet_with`]): a pause request flag plus live progress gauges a
/// monitoring thread (the `chef-serve` status endpoint) can read without
/// touching the workers.
#[derive(Debug, Default)]
pub struct FleetControl {
    pause: AtomicBool,
    /// Fleet-wide low-level instructions executed so far (gauge).
    pub ll_instructions: AtomicU64,
    /// Fleet-wide test cases generated so far, pre-deduplication (gauge).
    pub tests_generated: AtomicUsize,
}

impl FleetControl {
    /// Creates a control block with no pause requested.
    pub fn new() -> Self {
        Self::default()
    }

    /// Asks the fleet to stop at the next scheduling round and export its
    /// remaining frontier instead of finishing the exploration.
    pub fn request_pause(&self) {
        self.pause.store(true, Ordering::SeqCst);
    }

    /// Whether a pause has been requested.
    pub fn pause_requested(&self) -> bool {
        self.pause.load(Ordering::SeqCst)
    }

    /// Clears a previous pause request, so the control block can drive the
    /// resumed continuation of the same session.
    pub fn clear_pause(&self) {
        self.pause.store(false, Ordering::SeqCst);
    }
}

/// Outcome of a resumable fleet run: the merged report plus whatever work
/// was left unexplored when the run stopped.
#[derive(Debug)]
pub struct FleetOutcome {
    /// Merged, deduplicated results of the explored part.
    pub report: FleetReport,
    /// The unexplored frontier as portable seeds — empty iff the
    /// exploration ran to natural completion. Re-running with these seeds
    /// continues exactly where this run stopped; serialized (via
    /// `chef_core::wire`) they are a session checkpoint.
    pub frontier: Vec<chef_core::WorkSeed>,
    /// Whether the run stopped because of a pause request (as opposed to
    /// exhausting a budget or completing).
    pub paused: bool,
    /// The fleet's shared fork-point snapshot, if any worker reached
    /// `make_symbolic`. `chef-serve` persists it once per corpus target so
    /// checkpoint resume restores from instruction ~N instead of 0; the
    /// frontier seeds reference it by fingerprint.
    pub snapshot: Option<Arc<Snapshot>>,
}

impl FleetConfig {
    /// The default strategy portfolio: the paper's two CUPA instantiations
    /// plus the random baseline and DFS, round-robin across workers.
    pub fn default_portfolio() -> Vec<StrategyKind> {
        vec![
            StrategyKind::CupaPath,
            StrategyKind::CupaCoverage,
            StrategyKind::Random,
            StrategyKind::Dfs,
        ]
    }
}

/// Merged outcome of a fleet exploration.
#[derive(Debug)]
pub struct FleetReport {
    /// Deduplicated test cases (by canonical input bytes), in a
    /// deterministic order, with ids and `new_hl_path` reassigned.
    pub tests: Vec<TestCase>,
    /// Tests discarded as duplicates of another worker's.
    pub duplicates: usize,
    /// Distinct high-level paths across the fleet (by path signature).
    pub hl_paths: usize,
    /// Low-level paths terminated across the fleet (duplicates included).
    pub ll_paths: usize,
    /// Union of covered high-level locations.
    pub covered_hlpcs: HashSet<u64>,
    /// Summed executor counters.
    pub exec_stats: ExecStats,
    /// Summed solver counters (including SAT time, for attributing fleet
    /// time to solving vs. interpretation).
    pub solver_stats: SolverStats,
    /// Exception class name → count over deduplicated tests.
    pub exceptions: BTreeMap<String, usize>,
    /// Hang tests after deduplication.
    pub hangs: usize,
    /// Crash tests after deduplication.
    pub crashes: usize,
    /// Wall-clock duration of the whole fleet session.
    pub elapsed: Duration,
    /// Number of workers.
    pub jobs: usize,
    /// Work seeds shipped between workers.
    pub seeds_shipped: u64,
    /// Each worker's full single-engine report (per-worker `ExecStats`,
    /// `SolverStats`, strategy, and timeline).
    pub per_worker: Vec<Report>,
    /// Merged phase time attribution and fast-forward profile across all
    /// workers (empty unless a `chef_trace` level is enabled).
    pub trace: chef_trace::TraceStats,
    /// The adaptive fast-forward gate's learned site tables, merged across
    /// workers in worker-index order (so the result is deterministic) and
    /// sorted by HL PC. Feed it back via [`FleetConfig::seed_ff_sites`].
    pub ff_sites: chef_symex::FfSiteTable,
}

impl FleetReport {
    /// Low-level paths terminated per second of fleet wall clock.
    pub fn paths_per_sec(&self) -> f64 {
        self.ll_paths as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Deduplicated tests generated per second of fleet wall clock.
    pub fn tests_per_sec(&self) -> f64 {
        self.tests.len() as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Ratio of summed SAT-backend time to *fleet wall clock*, raw. With
    /// several workers solving concurrently this legitimately exceeds 1.0
    /// (more solver-seconds than wall-seconds) — that oversubscription is
    /// the signal, so it is not clamped away. Divide by
    /// [`FleetReport::wall_utilization`] × `jobs` for a per-worker share.
    pub fn sat_share(&self) -> f64 {
        let wall = self.elapsed.as_secs_f64();
        if wall <= 0.0 {
            0.0
        } else {
            self.solver_stats.sat_time.as_secs_f64() / wall
        }
    }

    /// Worker-seconds actually burned per available worker-second:
    /// `sum(worker elapsed) / (fleet elapsed × jobs)`, in `[0, 1]` up to
    /// clock skew. Low utilization means workers idled (starved injector,
    /// early exhaustion); it is the denominator that makes an
    /// oversubscribed [`FleetReport::sat_share`] interpretable.
    pub fn wall_utilization(&self) -> f64 {
        let capacity = self.elapsed.as_secs_f64() * self.jobs.max(1) as f64;
        if capacity <= 0.0 {
            return 0.0;
        }
        let burned: f64 = self
            .per_worker
            .iter()
            .map(|r| r.elapsed.as_secs_f64())
            .sum();
        burned / capacity
    }
}

struct Injector {
    seeds: VecDeque<WorkSeed>,
    idle: usize,
}

struct Shared {
    injector: Mutex<Injector>,
    cv: Condvar,
    /// Mirror of `Injector::idle` readable without the lock; busy workers
    /// use it to decide when to export seeds.
    waiting: AtomicUsize,
    done: AtomicBool,
    paused: AtomicBool,
    ll_total: AtomicU64,
    tests_total: AtomicUsize,
    cfg_edges: Mutex<HashSet<(u64, u64, u64)>>,
}

impl Shared {
    fn finish(&self) {
        self.done.store(true, Ordering::SeqCst);
        self.cv.notify_all();
    }
}

/// Runs a fleet exploration of `prog` and merges the results.
///
/// With `jobs = 1` this is behaviorally identical to
/// [`Chef::run`](chef_core::Chef::run) on the same configuration (the
/// single worker steals the root seed and explores everything).
pub fn run_fleet(prog: &Program, config: FleetConfig) -> FleetReport {
    run_fleet_with(prog, config, vec![WorkSeed::root()], None).report
}

/// Runs a resumable fleet exploration: the initial work is `seeds`
/// (typically `[WorkSeed::root()]` for a fresh run, or a checkpointed
/// frontier for a resumed one), and an optional [`FleetControl`] can pause
/// the run. Whatever remains unexplored when the run stops — because of a
/// pause request or an exhausted budget — comes back as
/// [`FleetOutcome::frontier`]; feeding it to another `run_fleet_with` call
/// continues the exploration, and the union of the runs' deduplicated
/// tests equals what one uninterrupted run would have generated.
/// Runs exactly one scheduler slice of an exploration: at most `slice_ll`
/// low-level instructions over `seeds`, returning the outcome with the
/// unexplored remainder as the frontier. This is the dispatch granularity
/// of `chef-serve`'s shared worker pool — a pool worker runs one slice of
/// one session, checkpoints the frontier, and requeues the session behind
/// its fair-share peers; the slice budget overrides whatever total budget
/// `config.base` carries (the *caller* accounts the session's cumulative
/// spend across slices).
pub fn run_fleet_slice(
    prog: &Program,
    mut config: FleetConfig,
    seeds: Vec<WorkSeed>,
    ctl: Option<&FleetControl>,
    slice_ll: u64,
) -> FleetOutcome {
    config.base.max_ll_instructions = slice_ll.max(1);
    run_fleet_with(prog, config, seeds, ctl)
}

pub fn run_fleet_with(
    prog: &Program,
    config: FleetConfig,
    seeds: Vec<WorkSeed>,
    ctl: Option<&FleetControl>,
) -> FleetOutcome {
    let started = Instant::now();
    let jobs = config.jobs.max(1);
    // Initial seeds are handed to workers in contiguous sorted chunks and
    // injected as a group (`Chef::inject_frontier`), so seeds sharing a
    // decision prefix replay it once instead of once each — the dominant
    // cost of resuming a deep checkpointed frontier. The injector starts
    // empty and only carries stolen work.
    let mut seeds = seeds;
    seeds.sort_by(|a, b| a.choices.cmp(&b.choices));
    let chunk = seeds.len().div_ceil(jobs).max(1);
    let mut initial: Vec<Vec<WorkSeed>> = seeds.chunks(chunk).map(<[WorkSeed]>::to_vec).collect();
    initial.resize(jobs, Vec::new());
    let shared = Shared {
        injector: Mutex::new(Injector {
            seeds: VecDeque::new(),
            idle: 0,
        }),
        cv: Condvar::new(),
        waiting: AtomicUsize::new(0),
        done: AtomicBool::new(false),
        paused: AtomicBool::new(false),
        ll_total: AtomicU64::new(0),
        tests_total: AtomicUsize::new(0),
        cfg_edges: Mutex::new(HashSet::new()),
    };
    let results: Vec<(Report, Vec<WorkSeed>, Option<Arc<Snapshot>>)> = std::thread::scope(|s| {
        let handles: Vec<_> = initial
            .into_iter()
            .enumerate()
            .map(|(w, mine)| {
                let shared = &shared;
                let config = &config;
                s.spawn(move || worker(w, prog, config, jobs, mine, shared, ctl))
            })
            .collect();
        // Worker index order, so the merge is deterministic regardless of
        // thread scheduling.
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    let mut frontier: Vec<WorkSeed> = Vec::new();
    let mut reports = Vec::with_capacity(results.len());
    // All workers capture the same deterministic fork-point image; keep
    // the first (identical fingerprints — the snapshot is shared content,
    // not per-worker state).
    let mut snapshot: Option<Arc<Snapshot>> = None;
    for (report, worker_frontier, worker_snap) in results {
        frontier.extend(worker_frontier);
        reports.push(report);
        if snapshot.is_none() {
            snapshot = worker_snap;
        }
    }
    // Seeds still queued in the injector are unexplored work too.
    frontier.extend(shared.injector.into_inner().unwrap().seeds);
    if let Some(sn) = &snapshot {
        // A queued seed exported before the capture (or the root seed a
        // resume passed in) may lack the reference; attach where it fits.
        for seed in &mut frontier {
            if seed.snapshot.is_none() {
                seed.attach_snapshot(sn);
            }
        }
    }
    frontier.sort_by(|a, b| a.choices.cmp(&b.choices));
    frontier.dedup();
    FleetOutcome {
        report: merge(reports, jobs, config.base.max_tests, started.elapsed()),
        frontier,
        paused: shared.paused.into_inner(),
        snapshot,
    }
}

fn worker(
    w: usize,
    prog: &Program,
    config: &FleetConfig,
    jobs: usize,
    mine: Vec<WorkSeed>,
    shared: &Shared,
    ctl: Option<&FleetControl>,
) -> (Report, Vec<WorkSeed>, Option<Arc<Snapshot>>) {
    let mut cfg = config.base.clone();
    // Diversify per-worker RNG streams; budgets are enforced fleet-wide.
    cfg.seed = cfg
        .seed
        .wrapping_add((w as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let max_tests = cfg.max_tests.take();
    let share_coverage = config.portfolio.is_some();
    if let Some(portfolio) = &config.portfolio {
        if !portfolio.is_empty() {
            cfg.strategy = portfolio[w % portfolio.len()];
        }
    }
    let budget = cfg.max_ll_instructions;
    let mut chef = Chef::from_seeds(prog, cfg, &mine);
    if !config.seed_cfg_edges.is_empty() {
        chef.absorb_cfg_edges(config.seed_cfg_edges.iter().copied());
    }
    if !config.seed_ff_sites.is_empty() {
        chef.absorb_ff_sites(config.seed_ff_sites.iter().copied());
    }
    let mut last_ll = 0u64;
    let mut last_tests = 0usize;
    let mut last_cov_sync = 0u64;
    let mut known_edges: HashSet<(u64, u64, u64)> = HashSet::new();
    'work: loop {
        if shared.done.load(Ordering::SeqCst) {
            break;
        }
        if ctl.is_some_and(|c| c.pause_requested()) {
            shared.paused.store(true, Ordering::SeqCst);
            shared.finish();
            break;
        }
        match chef.step_round() {
            EngineStatus::Running => {
                let ll = chef.ll_instructions();
                let delta = ll - last_ll;
                last_ll = ll;
                let total = shared.ll_total.fetch_add(delta, Ordering::SeqCst) + delta;
                if total >= budget {
                    shared.finish();
                    break;
                }
                let tests = chef.tests_generated();
                if tests > last_tests {
                    let delta_t = tests - last_tests;
                    last_tests = tests;
                    let t = shared.tests_total.fetch_add(delta_t, Ordering::SeqCst) + delta_t;
                    if max_tests.is_some_and(|m| t >= m) {
                        shared.finish();
                        break;
                    }
                }
                if let Some(ctl) = ctl {
                    ctl.ll_instructions.store(total, Ordering::Relaxed);
                    ctl.tests_generated.store(
                        shared.tests_total.load(Ordering::Relaxed),
                        Ordering::Relaxed,
                    );
                }
                // Work sharing: feed idle workers from our fork frontier
                // (queued-but-unactivated seeds ship first — they cost
                // nothing to hand off).
                if shared.waiting.load(Ordering::SeqCst) > 0
                    && chef.live_count() + chef.pending_count() > 1
                {
                    let seeds = chef.export_work(config.steal_batch);
                    if !seeds.is_empty() {
                        let mut inj = shared.injector.lock().unwrap();
                        inj.seeds.extend(seeds);
                        drop(inj);
                        shared.cv.notify_all();
                    }
                }
                if share_coverage && ll - last_cov_sync >= config.sync_interval_ll {
                    last_cov_sync = ll;
                    sync_coverage(&mut chef, &mut known_edges, shared);
                }
            }
            EngineStatus::Exhausted => {
                // Budgets are fleet-wide: one exhausted worker ends the run.
                shared.finish();
                break;
            }
            EngineStatus::OutOfWork => {
                let mut inj = shared.injector.lock().unwrap();
                loop {
                    if shared.done.load(Ordering::SeqCst) {
                        break 'work;
                    }
                    if let Some(seed) = inj.seeds.pop_front() {
                        drop(inj);
                        chef.inject_seed(&seed);
                        continue 'work;
                    }
                    inj.idle += 1;
                    shared.waiting.store(inj.idle, Ordering::SeqCst);
                    if inj.idle == jobs {
                        // Everyone idle over an empty queue: exploration
                        // is complete.
                        shared.finish();
                        break 'work;
                    }
                    // Timed wait as a lost-wakeup safety net.
                    let (guard, _) = shared
                        .cv
                        .wait_timeout(inj, Duration::from_millis(50))
                        .unwrap();
                    inj = guard;
                    inj.idle -= 1;
                    shared.waiting.store(inj.idle, Ordering::SeqCst);
                }
            }
        }
    }
    if share_coverage {
        sync_coverage(&mut chef, &mut known_edges, shared);
    }
    // Whatever is still live was never explored: hand it back as the
    // worker's share of the resumable frontier (empty on natural
    // completion, since completion requires every live list to drain).
    let frontier = chef.drain_frontier();
    let snapshot = chef.fork_snapshot();
    (chef.into_report(), frontier, snapshot)
}

/// Two-way exchange with the shared coverage map: publish locally observed
/// CFG edges, absorb everyone else's.
fn sync_coverage(chef: &mut Chef, known: &mut HashSet<(u64, u64, u64)>, shared: &Shared) {
    let mine: Vec<(u64, u64, u64)> = chef
        .hl_cfg()
        .edges()
        .filter(|e| !known.contains(e))
        .collect();
    let mut global = shared.cfg_edges.lock().unwrap();
    for &e in &mine {
        known.insert(e);
        global.insert(e);
    }
    let fresh: Vec<(u64, u64, u64)> = global
        .iter()
        .filter(|e| !known.contains(*e))
        .copied()
        .collect();
    drop(global);
    for &e in &fresh {
        known.insert(e);
    }
    chef.absorb_cfg_edges(fresh);
}

fn merge(
    mut reports: Vec<Report>,
    jobs: usize,
    max_tests: Option<usize>,
    elapsed: Duration,
) -> FleetReport {
    let mut all: Vec<TestCase> = Vec::new();
    let mut exec_stats = ExecStats::default();
    let mut solver_stats = SolverStats::default();
    let mut covered: HashSet<u64> = HashSet::new();
    let mut ll_paths = 0usize;
    let mut seeds_shipped = 0u64;
    let mut trace = chef_trace::TraceStats::default();
    let mut ff_sites: std::collections::BTreeMap<u64, chef_symex::FfSiteState> =
        std::collections::BTreeMap::new();
    for r in reports.iter_mut() {
        all.extend(r.tests.iter().cloned());
        add_exec_stats(&mut exec_stats, &r.exec_stats);
        add_solver_stats(&mut solver_stats, &r.solver_stats);
        trace.merge(&r.trace);
        covered.extend(r.covered_hlpcs.iter().copied());
        ll_paths += r.ll_paths;
        seeds_shipped += r.seeds_exported;
        // Reports arrive in worker-index order, so the absorb sequence —
        // and with it the merged table — is deterministic.
        for &(pc, site) in &r.ff_sites {
            match ff_sites.entry(pc) {
                std::collections::btree_map::Entry::Occupied(mut e) => e.get_mut().absorb(&site),
                std::collections::btree_map::Entry::Vacant(v) => {
                    v.insert(site);
                }
            }
        }
    }
    // Deterministic order, then dedup by canonical input bytes.
    all.sort_by_cached_key(|t| (t.canonical_key(), t.hl_sig));
    let mut seen_inputs: HashSet<Vec<(String, Vec<u8>)>> = HashSet::new();
    let mut seen_sigs: HashSet<u64> = HashSet::new();
    let mut tests: Vec<TestCase> = Vec::new();
    let mut duplicates = 0usize;
    let mut exceptions: BTreeMap<String, usize> = BTreeMap::new();
    let mut hangs = 0usize;
    let mut crashes = 0usize;
    for mut t in all {
        // Workers stop soon after the shared test counter passes the cap,
        // but rounds in flight can overshoot it; the merge enforces the
        // single-engine semantics on the deduplicated suite.
        if max_tests.is_some_and(|m| tests.len() >= m) {
            break;
        }
        if !seen_inputs.insert(t.canonical_key()) {
            duplicates += 1;
            continue;
        }
        t.id = tests.len();
        t.new_hl_path = seen_sigs.insert(t.hl_sig);
        match &t.status {
            chef_core::TestStatus::Hang => hangs += 1,
            chef_core::TestStatus::Crash(_) => crashes += 1,
            chef_core::TestStatus::Ok(_) => {}
        }
        if let Some(e) = &t.exception {
            *exceptions.entry(e.clone()).or_insert(0) += 1;
        }
        tests.push(t);
    }
    FleetReport {
        tests,
        duplicates,
        hl_paths: seen_sigs.len(),
        ll_paths,
        covered_hlpcs: covered,
        exec_stats,
        solver_stats,
        exceptions,
        hangs,
        crashes,
        elapsed,
        jobs,
        seeds_shipped,
        per_worker: reports,
        trace,
        ff_sites: ff_sites.into_iter().collect(),
    }
}

fn add_exec_stats(acc: &mut ExecStats, s: &ExecStats) {
    acc.ll_instructions += s.ll_instructions;
    acc.forks += s.forks;
    acc.symptr_forks += s.symptr_forks;
    acc.dropped_ptr_values += s.dropped_ptr_values;
    acc.states_created += s.states_created;
    acc.snapshots_captured += s.snapshots_captured;
    acc.snapshot_restores += s.snapshot_restores;
    acc.prologue_ll_skipped += s.prologue_ll_skipped;
    acc.full_replays += s.full_replays;
    acc.concrete_ll_executed += s.concrete_ll_executed;
    acc.fast_forwards += s.fast_forwards;
    acc.ff_aborts += s.ff_aborts;
    acc.ff_skipped += s.ff_skipped;
}

fn add_solver_stats(acc: &mut SolverStats, s: &SolverStats) {
    acc.queries += s.queries;
    acc.cache_hits += s.cache_hits;
    acc.cache_evictions += s.cache_evictions;
    acc.model_reuse_hits += s.model_reuse_hits;
    acc.const_hits += s.const_hits;
    acc.sat_calls += s.sat_calls;
    acc.assumption_solves += s.assumption_solves;
    acc.blast_cache_hits += s.blast_cache_hits;
    acc.blast_cache_misses += s.blast_cache_misses;
    acc.clauses_deleted += s.clauses_deleted;
    acc.guards_recycled += s.guards_recycled;
    acc.components += s.components;
    acc.unknowns += s.unknowns;
    acc.sat_time += s.sat_time;
}
