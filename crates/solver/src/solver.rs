//! The solver facade: feasibility checks, models, caching, and value
//! maximization (`upper_bound` in the Chef guest API).
//!
//! # Incremental architecture
//!
//! Symbolic execution queries are overwhelmingly *incremental*: each branch
//! adds one constraint to a path condition the solver just saw. The facade
//! is built around that shape:
//!
//! 1. **Persistent backend** — one [`BitBlaster`] (owning one
//!    [`crate::sat::SatSolver`]) lives as long as the `Solver`. Each
//!    assertion is bit-blasted once, guarded by an activation literal, and
//!    every query is a [`solve_under_assumptions`] call that just selects
//!    guards — learned clauses, activities, and phases carry over.
//! 2. **Independence partitioning** — the live assertion set is split into
//!    connected components by shared [`VarId`]s (KLEE's independent
//!    solver). Each component is solved — and cached — separately, so
//!    unrelated path-condition growth never invalidates a cached answer.
//! 3. **Bounded query cache** — per-component results with FIFO eviction.
//!
//! [`solve_under_assumptions`]: crate::sat::SatSolver::solve_under_assumptions

use std::collections::{HashMap, VecDeque};

use crate::bitblast::BitBlaster;
use crate::expr::{BinOp, ExprId, ExprPool, VarId};
use crate::sat::SatOutcome;

/// A satisfying assignment for the symbolic variables of a query.
///
/// Variables absent from the map default to zero; this makes a model a total
/// assignment, so replaying it through [`ExprPool::eval`] is always defined.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Model {
    values: HashMap<VarId, u64>,
}

impl Model {
    /// Creates an empty (all-zeros) model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the value for a variable.
    pub fn set(&mut self, var: VarId, value: u64) {
        self.values.insert(var, value);
    }

    /// The value assigned to `var` (zero if unconstrained).
    pub fn get(&self, var: VarId) -> u64 {
        self.values.get(&var).copied().unwrap_or(0)
    }

    /// Evaluates an expression under this model.
    pub fn eval(&self, pool: &ExprPool, expr: ExprId) -> u64 {
        pool.eval(expr, &|v| self.get(v))
    }

    /// Whether all width-1 assertions evaluate to true under this model.
    /// One evaluation memo is shared across the conjunction, so heavily
    /// shared path-condition sub-DAGs are evaluated once.
    pub fn satisfies(&self, pool: &ExprPool, assertions: &[ExprId]) -> bool {
        pool.eval_conjunction(assertions, &|v| self.get(v))
    }
}

/// Result of a satisfiability query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SatResult {
    /// Satisfiable with the given model.
    Sat(Model),
    /// No satisfying assignment exists.
    Unsat,
    /// The solver gave up (conflict budget exhausted). Callers prune the
    /// path, as KLEE/S2E prune on solver timeouts.
    ///
    /// Note that with the persistent backend, whether a near-budget query
    /// lands on `Unknown` can depend on the learned clauses accumulated
    /// from earlier queries — i.e. on query history, like the caches
    /// before it. `chef_symex` pins every history-sensitive choice in the
    /// state trace and validates canonical test inputs by direct
    /// evaluation, so this only perturbs which paths get pruned at the
    /// budget boundary, never the correctness of emitted tests.
    Unknown,
}

impl SatResult {
    /// Whether the result is satisfiable.
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }

    /// Extracts the model, if satisfiable.
    pub fn model(&self) -> Option<&Model> {
        match self {
            SatResult::Sat(m) => Some(m),
            SatResult::Unsat | SatResult::Unknown => None,
        }
    }
}

/// Counters describing solver work; useful in benchmark reports.
#[derive(Clone, Copy, Debug, Default)]
pub struct SolverStats {
    /// Total queries issued through [`Solver::check`].
    pub queries: u64,
    /// Component sub-queries answered by the query cache.
    pub cache_hits: u64,
    /// Entries evicted from the bounded query cache.
    pub cache_evictions: u64,
    /// Queries answered by re-checking a recent model.
    pub model_reuse_hits: u64,
    /// Queries answered by constant folding alone.
    pub const_hits: u64,
    /// Component sub-queries that reached the SAT backend.
    pub sat_calls: u64,
    /// Backend calls issued as assumption-based incremental solves (all of
    /// them, in the incremental architecture).
    pub assumption_solves: u64,
    /// Assertions whose CNF was reused from the blast cache instead of
    /// being re-encoded.
    pub blast_cache_hits: u64,
    /// Assertions bit-blasted for the first time (blast-cache misses).
    pub blast_cache_misses: u64,
    /// Learned clauses deleted by the backend's database reductions.
    pub clauses_deleted: u64,
    /// Transient guards (max/min trial bits, enumeration exclusions) whose
    /// clauses were freed by a popped guard-recycling frame.
    pub guards_recycled: u64,
    /// Independent components across all queries that reached partitioning
    /// (queries served by constant folding or model reuse contribute none).
    pub components: u64,
    /// Queries abandoned at the conflict budget.
    pub unknowns: u64,
    /// Cumulative time spent inside the SAT backend.
    pub sat_time: std::time::Duration,
}

impl SolverStats {
    /// Fraction of guard requests whose CNF came from the blast cache
    /// (assertion blasted once per solver lifetime, then toggled).
    pub fn blast_hit_rate(&self) -> f64 {
        let total = self.blast_cache_hits + self.blast_cache_misses;
        if total == 0 {
            0.0
        } else {
            self.blast_cache_hits as f64 / total as f64
        }
    }

    /// Mean independent components per issued query. Queries served by the
    /// constant or model-reuse fast paths contribute zero components, so
    /// this undercounts the partition width of the queries that actually
    /// reached the component solver.
    pub fn components_per_query(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.components as f64 / self.queries as f64
        }
    }

    /// One-line human-readable digest for CLI/bench reports.
    pub fn summary(&self) -> String {
        format!(
            "{} queries ({} const, {} model-reuse, {} cache hits, {} SAT), \
             {} assumption solves, {} blast-cache hits, {} components, \
             {} learned deleted, {} guards recycled, {} evictions, \
             {} unknowns, {:?} in SAT",
            self.queries,
            self.const_hits,
            self.model_reuse_hits,
            self.cache_hits,
            self.sat_calls,
            self.assumption_solves,
            self.blast_cache_hits,
            self.components,
            self.clauses_deleted,
            self.guards_recycled,
            self.cache_evictions,
            self.unknowns,
            self.sat_time,
        )
    }
}

/// Bitvector solver with a persistent incremental backend, an
/// independence-partitioned query cache, and a model-reuse fast path.
///
/// A `Solver` must be used with a single [`ExprPool`]: the blast and query
/// caches are keyed by expression ids, which are only stable within one
/// pool.
///
/// # Examples
///
/// ```
/// use chef_solver::{ExprPool, Solver, BinOp, SatResult};
/// let mut pool = ExprPool::new();
/// let mut solver = Solver::new();
/// let x = pool.fresh_var("x", 8);
/// let c = pool.constant(8, 10);
/// let gt = pool.bin(BinOp::Ult, c, x);
/// match solver.check(&pool, &[gt]) {
///     SatResult::Sat(m) => assert!(m.eval(&pool, x) > 10),
///     _ => unreachable!(),
/// }
/// ```
pub struct Solver {
    blaster: BitBlaster,
    cache: HashMap<Vec<ExprId>, SatResult>,
    /// Insertion order of cache keys, for FIFO eviction.
    cache_order: VecDeque<Vec<ExprId>>,
    model_ring: VecDeque<Model>,
    /// Memoized variable set per assertion id.
    vars_of: HashMap<ExprId, Vec<VarId>>,
    /// Per-query conflict budget handed to the SAT backend.
    pub conflict_budget: Option<u64>,
    /// Maximum entries in the query cache before FIFO eviction.
    pub cache_capacity: usize,
    /// When set, every non-trivial query's live assertion set is appended:
    /// a replayable path-condition growth trace (the `solver_incremental`
    /// bench feeds these back through fresh and incremental solvers).
    pub query_log: Option<Vec<Vec<ExprId>>>,
    /// Work counters.
    pub stats: SolverStats,
}

impl Default for Solver {
    fn default() -> Self {
        Solver {
            blaster: BitBlaster::new(),
            cache: HashMap::new(),
            cache_order: VecDeque::new(),
            model_ring: VecDeque::new(),
            vars_of: HashMap::new(),
            conflict_budget: Some(DEFAULT_CONFLICT_BUDGET),
            cache_capacity: DEFAULT_CACHE_CAPACITY,
            query_log: None,
            stats: SolverStats::default(),
        }
    }
}

/// Default per-query conflict budget (bounds one query to well under a
/// second on commodity hardware).
pub const DEFAULT_CONFLICT_BUDGET: u64 = 30_000;

/// Default capacity of the query cache (entries, per-component keys).
pub const DEFAULT_CACHE_CAPACITY: usize = 1 << 15;

/// Number of recent models retained for the reuse fast path.
const MODEL_RING: usize = 8;

impl Solver {
    /// Creates a solver with empty caches.
    pub fn new() -> Self {
        Self::default()
    }

    /// Checks satisfiability of the conjunction of width-1 `assertions`.
    ///
    /// # Panics
    ///
    /// Panics if any assertion does not have width 1.
    pub fn check(&mut self, pool: &ExprPool, assertions: &[ExprId]) -> SatResult {
        self.stats.queries += 1;
        // Constant filtering.
        let mut live: Vec<ExprId> = Vec::with_capacity(assertions.len());
        for &a in assertions {
            assert_eq!(pool.width(a), 1, "assertions must have width 1");
            match pool.as_const(a) {
                Some(1) => continue,
                Some(_) => {
                    self.stats.const_hits += 1;
                    return SatResult::Unsat;
                }
                None => live.push(a),
            }
        }
        if live.is_empty() {
            self.stats.const_hits += 1;
            return SatResult::Sat(Model::new());
        }
        live.sort_unstable();
        live.dedup();
        if let Some(log) = &mut self.query_log {
            log.push(live.clone());
        }
        // Model reuse: try the all-zeros model plus recent models.
        let zero = Model::new();
        if zero.satisfies(pool, &live) {
            self.stats.model_reuse_hits += 1;
            return SatResult::Sat(zero);
        }
        if let Some(m) = self
            .model_ring
            .iter()
            .rev()
            .find(|m| m.satisfies(pool, &live))
        {
            self.stats.model_reuse_hits += 1;
            return SatResult::Sat(m.clone());
        }
        // Independence partitioning: each connected component (assertions
        // linked by shared variables) is solved and cached on its own.
        let components = self.partition(pool, &live);
        self.stats.components += components.len() as u64;
        let mut merged = Model::new();
        let mut unknown = false;
        for comp in &components {
            match self.check_component(pool, comp) {
                SatResult::Unsat => return SatResult::Unsat,
                SatResult::Unknown => unknown = true,
                SatResult::Sat(m) => {
                    for (&var, &val) in &m.values {
                        merged.set(var, val);
                    }
                }
            }
        }
        if unknown {
            return SatResult::Unknown;
        }
        debug_assert!(
            merged.satisfies(pool, &live),
            "model must satisfy the query"
        );
        self.model_ring.push_back(merged.clone());
        if self.model_ring.len() > MODEL_RING {
            self.model_ring.pop_front();
        }
        SatResult::Sat(merged)
    }

    /// Splits sorted, deduplicated assertions into connected components by
    /// shared variables. Components are ordered by their smallest assertion
    /// id, and each component's assertions stay sorted — so component keys
    /// are canonical.
    fn partition(&mut self, pool: &ExprPool, live: &[ExprId]) -> Vec<Vec<ExprId>> {
        // Union-find over assertion indices.
        let mut parent: Vec<usize> = (0..live.len()).collect();
        fn find(parent: &mut [usize], mut i: usize) -> usize {
            while parent[i] != i {
                parent[i] = parent[parent[i]];
                i = parent[i];
            }
            i
        }
        let mut owner: HashMap<VarId, usize> = HashMap::new();
        for (i, &a) in live.iter().enumerate() {
            let vars = self.vars_of.entry(a).or_insert_with(|| {
                let mut v = Vec::new();
                pool.collect_vars(a, &mut v);
                v
            });
            for &v in vars.iter() {
                match owner.entry(v) {
                    std::collections::hash_map::Entry::Occupied(e) => {
                        let ra = find(&mut parent, i);
                        let rb = find(&mut parent, *e.get());
                        if ra != rb {
                            parent[ra.max(rb)] = ra.min(rb);
                        }
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(i);
                    }
                }
            }
        }
        // Group by root, in first-appearance (= smallest index) order.
        let mut comp_of_root: HashMap<usize, usize> = HashMap::new();
        let mut comps: Vec<Vec<ExprId>> = Vec::new();
        for (i, &a) in live.iter().enumerate() {
            let r = find(&mut parent, i);
            let ci = *comp_of_root.entry(r).or_insert_with(|| {
                comps.push(Vec::new());
                comps.len() - 1
            });
            comps[ci].push(a);
        }
        comps
    }

    /// Solves one independent component: cache lookup, then an
    /// assumption-based incremental solve over the persistent instance.
    fn check_component(&mut self, pool: &ExprPool, comp: &[ExprId]) -> SatResult {
        if let Some(res) = self.cache.get(comp) {
            self.stats.cache_hits += 1;
            return res.clone();
        }
        self.stats.sat_calls += 1;
        self.stats.assumption_solves += 1;
        let start = std::time::Instant::now();
        let mut assumptions = Vec::with_capacity(comp.len());
        {
            let _blast = chef_trace::span(chef_trace::Phase::Blast);
            for &a in comp {
                assumptions.push(self.blaster.guard(pool, a));
            }
        }
        self.blaster.sat_mut().conflict_budget = self.conflict_budget;
        let outcome = {
            let _sat = chef_trace::span(chef_trace::Phase::SolverSat);
            self.blaster.sat_mut().solve_under_assumptions(&assumptions)
        };
        let elapsed = start.elapsed();
        self.stats.sat_time += elapsed;
        chef_trace::record_solver_query(elapsed);
        self.stats.blast_cache_hits = self.blaster.guard_hits;
        self.stats.blast_cache_misses = self.blaster.guards_created;
        self.stats.clauses_deleted = self.blaster.sat().clauses_deleted;
        self.stats.guards_recycled = self.blaster.guards_recycled;
        let res = match outcome {
            SatOutcome::Unknown => {
                self.stats.unknowns += 1;
                SatResult::Unknown
            }
            SatOutcome::Unsat => SatResult::Unsat,
            SatOutcome::Sat(bits) => {
                let mut model = Model::new();
                for &a in comp {
                    for &v in &self.vars_of[&a] {
                        model.set(v, self.blaster.var_value(v, &bits));
                    }
                }
                debug_assert!(
                    model.satisfies(pool, comp),
                    "component model must satisfy its component"
                );
                SatResult::Sat(model)
            }
        };
        self.cache_insert(comp.to_vec(), res.clone());
        res
    }

    fn cache_insert(&mut self, key: Vec<ExprId>, val: SatResult) {
        while self.cache.len() >= self.cache_capacity {
            let Some(old) = self.cache_order.pop_front() else {
                break;
            };
            if self.cache.remove(&old).is_some() {
                self.stats.cache_evictions += 1;
            }
        }
        if self.cache.insert(key.clone(), val).is_none() {
            self.cache_order.push_back(key);
        }
    }

    /// Whether the conjunction of `assertions` is satisfiable.
    pub fn is_feasible(&mut self, pool: &ExprPool, assertions: &[ExprId]) -> bool {
        self.check(pool, assertions).is_sat()
    }

    /// A concrete value `expr` can take under `assertions`, if any.
    pub fn value_of(
        &mut self,
        pool: &ExprPool,
        expr: ExprId,
        assertions: &[ExprId],
    ) -> Option<u64> {
        match self.check(pool, assertions) {
            SatResult::Sat(m) => Some(m.eval(pool, expr)),
            SatResult::Unsat | SatResult::Unknown => None,
        }
    }

    /// Maximum value of `expr` under `assertions` (the guest API's
    /// `upper_bound`), found by MSB-first bit fixing.
    ///
    /// Each of the `w` trial constraints is one assumption-driven solve on
    /// the persistent instance: the base assertions are never re-blasted,
    /// only the trial constraint's guard changes between iterations.
    ///
    /// Returns `None` if the assertions are unsatisfiable. A trial query
    /// lost to the conflict budget ([`SatResult::Unknown`]) is treated as
    /// infeasible, which can make the bound conservative (too small here,
    /// too large in [`Solver::min_value`]); callers that need an exact
    /// bound under budget pressure must re-validate it (as
    /// `chef_symex::State::concretize_inputs_canonical` does by direct
    /// evaluation).
    pub fn max_value(
        &mut self,
        pool: &mut ExprPool,
        expr: ExprId,
        assertions: &[ExprId],
    ) -> Option<u64> {
        if let Some(c) = pool.as_const(expr) {
            return self.is_feasible(pool, assertions).then_some(c);
        }
        if !self.is_feasible(pool, assertions) {
            return None;
        }
        // The w trial constraints are transient: scope their CNF to a
        // guard-recycling frame so long sessions don't accumulate it.
        self.blaster.push_guard_frame();
        let w = pool.width(expr);
        let mut prefix = 0u64;
        let mut query: Vec<ExprId> = assertions.to_vec();
        query.push(pool.true_()); // placeholder slot for the trial constraint
        for bit in (0..w).rev() {
            let trial = prefix | (1u64 << bit);
            // Constrain the already-fixed high bits plus this bit.
            let hi = pool.extract(w - 1, bit, expr);
            let want = pool.constant(w - bit, trial >> bit);
            let cons = pool.eq(hi, want);
            *query.last_mut().unwrap() = cons;
            if self.check(pool, &query).is_sat() {
                prefix = trial;
            }
        }
        self.pop_guard_frame();
        Some(prefix)
    }

    /// Closes the innermost backend recycling frame and refreshes the
    /// recycling counter in [`SolverStats`].
    fn pop_guard_frame(&mut self) {
        self.blaster.pop_guard_frame();
        self.stats.guards_recycled = self.blaster.guards_recycled;
    }

    /// Minimum value of `expr` under `assertions`, by MSB-first bit fixing
    /// toward zero (same assumption-driven loop as [`Solver::max_value`]).
    /// Returns `None` if unsatisfiable.
    pub fn min_value(
        &mut self,
        pool: &mut ExprPool,
        expr: ExprId,
        assertions: &[ExprId],
    ) -> Option<u64> {
        if let Some(c) = pool.as_const(expr) {
            return self.is_feasible(pool, assertions).then_some(c);
        }
        if !self.is_feasible(pool, assertions) {
            return None;
        }
        self.blaster.push_guard_frame();
        let w = pool.width(expr);
        let mut prefix = 0u64;
        let mut query: Vec<ExprId> = assertions.to_vec();
        query.push(pool.true_());
        for bit in (0..w).rev() {
            // Try to keep this bit at zero.
            let hi = pool.extract(w - 1, bit, expr);
            let want = pool.constant(w - bit, prefix >> bit);
            let cons = pool.eq(hi, want);
            *query.last_mut().unwrap() = cons;
            if !self.check(pool, &query).is_sat() {
                prefix |= 1u64 << bit;
            }
        }
        self.pop_guard_frame();
        Some(prefix)
    }

    /// Enumerates up to `limit` distinct feasible values of `expr`.
    ///
    /// Used by the symbolic-pointer concretization policy: each value found
    /// is excluded and the query repeated — each exclusion is one more
    /// guarded constraint on the persistent instance, not a re-blast.
    pub fn enumerate_values(
        &mut self,
        pool: &mut ExprPool,
        expr: ExprId,
        assertions: &[ExprId],
        limit: usize,
    ) -> Vec<u64> {
        let mut out = Vec::new();
        if limit == 0 || !self.is_feasible(pool, assertions) {
            return out;
        }
        // Exclusion constraints are transient; recycle their clauses when
        // the enumeration finishes. The pre-check above keeps the base
        // assertions' guards outside the frame, so path conditions stay in
        // the persistent instance.
        self.blaster.push_guard_frame();
        let mut query = assertions.to_vec();
        while out.len() < limit {
            match self.check(pool, &query) {
                SatResult::Unsat | SatResult::Unknown => break,
                SatResult::Sat(m) => {
                    let v = m.eval(pool, expr);
                    out.push(v);
                    let w = pool.width(expr);
                    let c = pool.constant(w, v);
                    let ne = pool.ne(expr, c);
                    query.push(ne);
                }
            }
        }
        self.pop_guard_frame();
        out
    }
}

/// Convenience builder: `a > b` unsigned as width-1.
pub fn ugt(pool: &mut ExprPool, a: ExprId, b: ExprId) -> ExprId {
    pool.bin(BinOp::Ult, b, a)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_query_is_sat() {
        let pool = ExprPool::new();
        let mut s = Solver::new();
        assert!(s.check(&pool, &[]).is_sat());
    }

    #[test]
    fn const_false_is_unsat_without_sat_call() {
        let mut pool = ExprPool::new();
        let mut s = Solver::new();
        let f = pool.false_();
        assert_eq!(s.check(&pool, &[f]), SatResult::Unsat);
        assert_eq!(s.stats.sat_calls, 0);
    }

    #[test]
    fn cache_avoids_resolving() {
        let mut pool = ExprPool::new();
        let mut s = Solver::new();
        let x = pool.fresh_var("x", 8);
        let c = pool.constant(8, 42);
        let eq = pool.eq(x, c);
        let zero = pool.constant(8, 0);
        let ne0 = pool.ne(x, zero);
        assert!(s.check(&pool, &[eq, ne0]).is_sat());
        let sat_calls = s.stats.sat_calls;
        assert!(s.check(&pool, &[ne0, eq]).is_sat(), "order-insensitive");
        assert_eq!(s.stats.sat_calls, sat_calls, "second query served by cache");
    }

    #[test]
    fn model_reuse_fast_path() {
        let mut pool = ExprPool::new();
        let mut s = Solver::new();
        let x = pool.fresh_var("x", 8);
        let c = pool.constant(8, 42);
        let eq = pool.eq(x, c);
        assert!(s.check(&pool, &[eq]).is_sat());
        // A weaker query satisfied by the same model should reuse it.
        let ten = pool.constant(8, 10);
        let gt = ugt(&mut pool, x, ten);
        let sat_calls = s.stats.sat_calls;
        assert!(s.check(&pool, &[gt]).is_sat());
        assert_eq!(s.stats.sat_calls, sat_calls, "served by model reuse");
    }

    #[test]
    fn max_value_bounded_var() {
        let mut pool = ExprPool::new();
        let mut s = Solver::new();
        let x = pool.fresh_var("x", 8);
        let c100 = pool.constant(8, 100);
        let le = pool.bin(BinOp::Ule, x, c100);
        assert_eq!(s.max_value(&mut pool, x, &[le]), Some(100));
        assert_eq!(s.min_value(&mut pool, x, &[le]), Some(0));
    }

    #[test]
    fn max_value_of_expression() {
        // max of 2*x where x <= 10 (8-bit): 20
        let mut pool = ExprPool::new();
        let mut s = Solver::new();
        let x = pool.fresh_var("x", 8);
        let two = pool.constant(8, 2);
        let dbl = pool.bin(BinOp::Mul, x, two);
        let c10 = pool.constant(8, 10);
        let le = pool.bin(BinOp::Ule, x, c10);
        assert_eq!(s.max_value(&mut pool, dbl, &[le]), Some(20));
    }

    #[test]
    fn max_value_unconstrained_is_all_ones() {
        let mut pool = ExprPool::new();
        let mut s = Solver::new();
        let x = pool.fresh_var("x", 8);
        assert_eq!(s.max_value(&mut pool, x, &[]), Some(255));
    }

    #[test]
    fn enumerate_values_respects_limit_and_distinctness() {
        let mut pool = ExprPool::new();
        let mut s = Solver::new();
        let x = pool.fresh_var("x", 8);
        let c4 = pool.constant(8, 4);
        let lt = pool.bin(BinOp::Ult, x, c4);
        let mut vals = s.enumerate_values(&mut pool, x, &[lt], 10);
        vals.sort_unstable();
        assert_eq!(vals, vec![0, 1, 2, 3]);
        let capped = s.enumerate_values(&mut pool, x, &[], 3);
        assert_eq!(capped.len(), 3);
    }

    #[test]
    fn unsat_max_value_is_none() {
        let mut pool = ExprPool::new();
        let mut s = Solver::new();
        let x = pool.fresh_var("x", 8);
        let c = pool.constant(8, 1);
        let eq = pool.eq(x, c);
        let zero = pool.constant(8, 0);
        let eq0 = pool.eq(x, zero);
        assert_eq!(s.max_value(&mut pool, x, &[eq, eq0]), None);
    }

    #[test]
    fn incremental_growth_reuses_blasted_assertions() {
        // Push-style growth: each check re-sends the whole path; with the
        // persistent backend every previously seen assertion is a blast
        // cache hit, and repeating the final query is a pure cache hit.
        let mut pool = ExprPool::new();
        let mut s = Solver::new();
        let x = pool.fresh_var("x", 32);
        let mut path = Vec::new();
        // Each step pins one more byte of x to a nonzero value, so neither
        // the zero model nor any earlier model can serve the new query —
        // every step reaches the backend, re-sending the whole path.
        for k in 0..4u8 {
            let b = pool.extract(8 * k + 7, 8 * k, x);
            let c = pool.constant(8, (k + 1) as u64);
            path.push(pool.eq(b, c));
            assert!(s.check(&pool, &path).is_sat());
        }
        assert_eq!(s.stats.sat_calls, 4, "each growth step reaches the backend");
        assert!(
            s.stats.blast_cache_hits > 0,
            "repeated assertions must hit the blast cache"
        );
        let calls = s.stats.sat_calls;
        assert!(s.check(&pool, &path).is_sat());
        assert_eq!(
            s.stats.sat_calls, calls,
            "repeating the query never re-solves"
        );
    }

    #[test]
    fn independent_components_are_cached_separately() {
        let mut pool = ExprPool::new();
        let mut s = Solver::new();
        let x = pool.fresh_var("x", 8);
        let y = pool.fresh_var("y", 8);
        let c7 = pool.constant(8, 7);
        let c9 = pool.constant(8, 9);
        let cx = pool.eq(x, c7); // component {x}
        let cy = pool.eq(y, c9); // component {y}
        let res = s.check(&pool, &[cx, cy]);
        let SatResult::Sat(m) = res else {
            panic!("sat")
        };
        assert_eq!(m.eval(&pool, x), 7);
        assert_eq!(m.eval(&pool, y), 9);
        assert_eq!(s.stats.components, 2, "two independent components");
        let sat_calls = s.stats.sat_calls;
        // Changing the y-side must not invalidate the cached x-component
        // (the new y-constraint also defeats the model-reuse fast path).
        let c12 = pool.constant(8, 12);
        let cy2 = pool.eq(y, c12);
        let hits_before = s.stats.cache_hits;
        let SatResult::Sat(m2) = s.check(&pool, &[cx, cy2]) else {
            panic!("sat")
        };
        assert_eq!(m2.eval(&pool, x), 7);
        assert_eq!(m2.eval(&pool, y), 12);
        assert!(
            s.stats.cache_hits > hits_before,
            "the untouched x-component is a cache hit"
        );
        // Only the y-component needed the backend.
        assert_eq!(s.stats.sat_calls, sat_calls + 1);
    }

    #[test]
    fn unsat_in_one_component_fails_the_query() {
        let mut pool = ExprPool::new();
        let mut s = Solver::new();
        let x = pool.fresh_var("x", 8);
        let y = pool.fresh_var("y", 8);
        let c1 = pool.constant(8, 1);
        let c2 = pool.constant(8, 2);
        let cx = pool.eq(x, c1);
        let y1 = pool.eq(y, c1);
        let y2 = pool.eq(y, c2);
        assert_eq!(s.check(&pool, &[cx, y1, y2]), SatResult::Unsat);
    }

    #[test]
    fn optimization_loops_recycle_their_guards() {
        // max/min/enumerate create transient trial guards; after each call
        // the backend clause count must return to its pre-call level, so
        // long sessions issuing many bounds queries stay bounded.
        let mut pool = ExprPool::new();
        let mut s = Solver::new();
        let x = pool.fresh_var("x", 8);
        let c100 = pool.constant(8, 100);
        let le = pool.bin(BinOp::Ule, x, c100);
        // Materialize the persistent part first.
        assert!(s.check(&pool, &[le]).is_sat());
        assert_eq!(s.max_value(&mut pool, x, &[le]), Some(100));
        let clauses_after_first = s.blaster.sat().num_clauses();
        assert!(s.stats.guards_recycled > 0, "trial guards were recycled");
        for _ in 0..5 {
            assert_eq!(s.max_value(&mut pool, x, &[le]), Some(100));
            assert_eq!(s.min_value(&mut pool, x, &[le]), Some(0));
            let mut vals = s.enumerate_values(&mut pool, x, &[le], 3);
            vals.sort_unstable();
            assert_eq!(vals.len(), 3);
        }
        assert_eq!(
            s.blaster.sat().num_clauses(),
            clauses_after_first,
            "repeated optimization calls must not grow the clause database"
        );
    }

    #[test]
    fn query_cache_is_bounded_and_counts_evictions() {
        let mut pool = ExprPool::new();
        let mut s = Solver::new();
        s.cache_capacity = 4;
        let x = pool.fresh_var("x", 8);
        for k in 1..=12u64 {
            let c = pool.constant(8, k);
            let eq = pool.eq(x, c);
            assert!(s.check(&pool, &[eq]).is_sat());
        }
        assert!(s.cache.len() <= 4, "cache stays within capacity");
        assert!(s.stats.cache_evictions > 0, "evictions are counted");
        assert_eq!(s.cache.len() + s.stats.cache_evictions as usize, {
            // every distinct solved component was inserted exactly once
            s.stats.sat_calls as usize
        });
    }
}
