//! The solver facade: feasibility checks, models, caching, and value
//! maximization (`upper_bound` in the Chef guest API).

use std::collections::HashMap;

use crate::bitblast::BitBlaster;
use crate::expr::{BinOp, ExprId, ExprPool, VarId};
use crate::sat::{SatOutcome, SatSolver};

/// A satisfying assignment for the symbolic variables of a query.
///
/// Variables absent from the map default to zero; this makes a model a total
/// assignment, so replaying it through [`ExprPool::eval`] is always defined.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Model {
    values: HashMap<VarId, u64>,
}

impl Model {
    /// Creates an empty (all-zeros) model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the value for a variable.
    pub fn set(&mut self, var: VarId, value: u64) {
        self.values.insert(var, value);
    }

    /// The value assigned to `var` (zero if unconstrained).
    pub fn get(&self, var: VarId) -> u64 {
        self.values.get(&var).copied().unwrap_or(0)
    }

    /// Evaluates an expression under this model.
    pub fn eval(&self, pool: &ExprPool, expr: ExprId) -> u64 {
        pool.eval(expr, &|v| self.get(v))
    }

    /// Whether all width-1 assertions evaluate to true under this model.
    pub fn satisfies(&self, pool: &ExprPool, assertions: &[ExprId]) -> bool {
        assertions.iter().all(|&a| self.eval(pool, a) == 1)
    }
}

/// Result of a satisfiability query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SatResult {
    /// Satisfiable with the given model.
    Sat(Model),
    /// No satisfying assignment exists.
    Unsat,
    /// The solver gave up (conflict budget exhausted). Callers prune the
    /// path, as KLEE/S2E prune on solver timeouts.
    Unknown,
}

impl SatResult {
    /// Whether the result is satisfiable.
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }

    /// Extracts the model, if satisfiable.
    pub fn model(&self) -> Option<&Model> {
        match self {
            SatResult::Sat(m) => Some(m),
            SatResult::Unsat | SatResult::Unknown => None,
        }
    }
}

/// Counters describing solver work; useful in benchmark reports.
#[derive(Clone, Copy, Debug, Default)]
pub struct SolverStats {
    /// Total queries issued through [`Solver::check`].
    pub queries: u64,
    /// Queries answered by the query cache.
    pub cache_hits: u64,
    /// Queries answered by re-checking a recent model.
    pub model_reuse_hits: u64,
    /// Queries answered by constant folding alone.
    pub const_hits: u64,
    /// Queries that reached the SAT backend.
    pub sat_calls: u64,
    /// Queries abandoned at the conflict budget.
    pub unknowns: u64,
    /// Cumulative time spent inside the SAT backend.
    pub sat_time: std::time::Duration,
}

/// Bitvector solver with query cache and model-reuse fast path.
///
/// A `Solver` must be used with a single [`ExprPool`]: the query cache is
/// keyed by expression ids, which are only stable within one pool.
///
/// # Examples
///
/// ```
/// use chef_solver::{ExprPool, Solver, BinOp, SatResult};
/// let mut pool = ExprPool::new();
/// let mut solver = Solver::new();
/// let x = pool.fresh_var("x", 8);
/// let c = pool.constant(8, 10);
/// let gt = pool.bin(BinOp::Ult, c, x);
/// match solver.check(&pool, &[gt]) {
///     SatResult::Sat(m) => assert!(m.eval(&pool, x) > 10),
///     _ => unreachable!(),
/// }
/// ```
pub struct Solver {
    cache: HashMap<Vec<ExprId>, SatResult>,
    model_ring: Vec<Model>,
    /// Per-query conflict budget handed to the SAT backend.
    pub conflict_budget: Option<u64>,
    /// Work counters.
    pub stats: SolverStats,
}

impl Default for Solver {
    fn default() -> Self {
        Solver {
            cache: HashMap::new(),
            model_ring: Vec::new(),
            conflict_budget: Some(DEFAULT_CONFLICT_BUDGET),
            stats: SolverStats::default(),
        }
    }
}

/// Default per-query conflict budget (bounds one query to well under a
/// second on commodity hardware).
pub const DEFAULT_CONFLICT_BUDGET: u64 = 30_000;

/// Number of recent models retained for the reuse fast path.
const MODEL_RING: usize = 8;

impl Solver {
    /// Creates a solver with empty caches.
    pub fn new() -> Self {
        Self::default()
    }

    /// Checks satisfiability of the conjunction of width-1 `assertions`.
    ///
    /// # Panics
    ///
    /// Panics if any assertion does not have width 1.
    pub fn check(&mut self, pool: &ExprPool, assertions: &[ExprId]) -> SatResult {
        self.stats.queries += 1;
        // Constant filtering.
        let mut live: Vec<ExprId> = Vec::with_capacity(assertions.len());
        for &a in assertions {
            assert_eq!(pool.width(a), 1, "assertions must have width 1");
            match pool.as_const(a) {
                Some(1) => continue,
                Some(_) => {
                    self.stats.const_hits += 1;
                    return SatResult::Unsat;
                }
                None => live.push(a),
            }
        }
        if live.is_empty() {
            self.stats.const_hits += 1;
            return SatResult::Sat(Model::new());
        }
        live.sort_unstable();
        live.dedup();
        // Query cache.
        if let Some(res) = self.cache.get(&live) {
            self.stats.cache_hits += 1;
            return res.clone();
        }
        // Model reuse: try the all-zeros model plus recent models.
        let zero = Model::new();
        if zero.satisfies(pool, &live) {
            self.stats.model_reuse_hits += 1;
            let res = SatResult::Sat(zero);
            self.cache.insert(live, res.clone());
            return res;
        }
        for m in self.model_ring.iter().rev() {
            if m.satisfies(pool, &live) {
                self.stats.model_reuse_hits += 1;
                let res = SatResult::Sat(m.clone());
                self.cache.insert(live, res.clone());
                return res;
            }
        }
        // Full SAT query.
        self.stats.sat_calls += 1;
        let start = std::time::Instant::now();
        let mut sat = SatSolver::new();
        sat.conflict_budget = self.conflict_budget;
        let mut bb = BitBlaster::new(&mut sat);
        for &a in &live {
            bb.assert_true(pool, a);
        }
        let map = bb.finish();
        let outcome = sat.solve();
        self.stats.sat_time += start.elapsed();
        let res = match outcome {
            SatOutcome::Unknown => {
                self.stats.unknowns += 1;
                SatResult::Unknown
            }
            SatOutcome::Unsat => SatResult::Unsat,
            SatOutcome::Sat(bits) => {
                let mut model = Model::new();
                let vars: Vec<VarId> = map.blasted_vars().collect();
                for v in vars {
                    model.set(v, map.var_value(v, &bits));
                }
                debug_assert!(model.satisfies(pool, &live), "model must satisfy the query");
                self.model_ring.push(model.clone());
                if self.model_ring.len() > MODEL_RING {
                    self.model_ring.remove(0);
                }
                SatResult::Sat(model)
            }
        };
        self.cache.insert(live, res.clone());
        res
    }

    /// Whether the conjunction of `assertions` is satisfiable.
    pub fn is_feasible(&mut self, pool: &ExprPool, assertions: &[ExprId]) -> bool {
        self.check(pool, assertions).is_sat()
    }

    /// A concrete value `expr` can take under `assertions`, if any.
    pub fn value_of(
        &mut self,
        pool: &ExprPool,
        expr: ExprId,
        assertions: &[ExprId],
    ) -> Option<u64> {
        match self.check(pool, assertions) {
            SatResult::Sat(m) => Some(m.eval(pool, expr)),
            SatResult::Unsat | SatResult::Unknown => None,
        }
    }

    /// Maximum value of `expr` under `assertions` (the guest API's
    /// `upper_bound`), found by MSB-first bit fixing.
    ///
    /// Returns `None` if the assertions are unsatisfiable.
    pub fn max_value(
        &mut self,
        pool: &mut ExprPool,
        expr: ExprId,
        assertions: &[ExprId],
    ) -> Option<u64> {
        if let Some(c) = pool.as_const(expr) {
            return self.is_feasible(pool, assertions).then_some(c);
        }
        if !self.is_feasible(pool, assertions) {
            return None;
        }
        let w = pool.width(expr);
        let mut prefix = 0u64;
        let mut query: Vec<ExprId> = assertions.to_vec();
        query.push(pool.true_()); // placeholder slot for the trial constraint
        for bit in (0..w).rev() {
            let trial = prefix | (1u64 << bit);
            // Constrain the already-fixed high bits plus this bit.
            let hi = pool.extract(w - 1, bit, expr);
            let want = pool.constant(w - bit, trial >> bit);
            let cons = pool.eq(hi, want);
            *query.last_mut().unwrap() = cons;
            if self.check(pool, &query).is_sat() {
                prefix = trial;
            }
        }
        Some(prefix)
    }

    /// Minimum value of `expr` under `assertions`, by MSB-first bit fixing
    /// toward zero. Returns `None` if unsatisfiable.
    pub fn min_value(
        &mut self,
        pool: &mut ExprPool,
        expr: ExprId,
        assertions: &[ExprId],
    ) -> Option<u64> {
        if let Some(c) = pool.as_const(expr) {
            return self.is_feasible(pool, assertions).then_some(c);
        }
        if !self.is_feasible(pool, assertions) {
            return None;
        }
        let w = pool.width(expr);
        let mut prefix = 0u64;
        let mut query: Vec<ExprId> = assertions.to_vec();
        query.push(pool.true_());
        for bit in (0..w).rev() {
            // Try to keep this bit at zero.
            let hi = pool.extract(w - 1, bit, expr);
            let want = pool.constant(w - bit, prefix >> bit);
            let cons = pool.eq(hi, want);
            *query.last_mut().unwrap() = cons;
            if !self.check(pool, &query).is_sat() {
                prefix |= 1u64 << bit;
            }
        }
        Some(prefix)
    }

    /// Enumerates up to `limit` distinct feasible values of `expr`.
    ///
    /// Used by the symbolic-pointer concretization policy: each value found
    /// is excluded and the query repeated.
    pub fn enumerate_values(
        &mut self,
        pool: &mut ExprPool,
        expr: ExprId,
        assertions: &[ExprId],
        limit: usize,
    ) -> Vec<u64> {
        let mut out = Vec::new();
        let mut query = assertions.to_vec();
        while out.len() < limit {
            match self.check(pool, &query) {
                SatResult::Unsat | SatResult::Unknown => break,
                SatResult::Sat(m) => {
                    let v = m.eval(pool, expr);
                    out.push(v);
                    let w = pool.width(expr);
                    let c = pool.constant(w, v);
                    let ne = pool.ne(expr, c);
                    query.push(ne);
                }
            }
        }
        out
    }
}

/// Convenience builder: `a > b` unsigned as width-1.
pub fn ugt(pool: &mut ExprPool, a: ExprId, b: ExprId) -> ExprId {
    pool.bin(BinOp::Ult, b, a)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_query_is_sat() {
        let pool = ExprPool::new();
        let mut s = Solver::new();
        assert!(s.check(&pool, &[]).is_sat());
    }

    #[test]
    fn const_false_is_unsat_without_sat_call() {
        let mut pool = ExprPool::new();
        let mut s = Solver::new();
        let f = pool.false_();
        assert_eq!(s.check(&pool, &[f]), SatResult::Unsat);
        assert_eq!(s.stats.sat_calls, 0);
    }

    #[test]
    fn cache_avoids_resolving() {
        let mut pool = ExprPool::new();
        let mut s = Solver::new();
        let x = pool.fresh_var("x", 8);
        let c = pool.constant(8, 42);
        let eq = pool.eq(x, c);
        let zero = pool.constant(8, 0);
        let ne0 = pool.ne(x, zero);
        assert!(s.check(&pool, &[eq, ne0]).is_sat());
        let sat_calls = s.stats.sat_calls;
        assert!(s.check(&pool, &[ne0, eq]).is_sat(), "order-insensitive");
        assert_eq!(s.stats.sat_calls, sat_calls, "second query served by cache");
    }

    #[test]
    fn model_reuse_fast_path() {
        let mut pool = ExprPool::new();
        let mut s = Solver::new();
        let x = pool.fresh_var("x", 8);
        let c = pool.constant(8, 42);
        let eq = pool.eq(x, c);
        assert!(s.check(&pool, &[eq]).is_sat());
        // A weaker query satisfied by the same model should reuse it.
        let ten = pool.constant(8, 10);
        let gt = ugt(&mut pool, x, ten);
        let sat_calls = s.stats.sat_calls;
        assert!(s.check(&pool, &[gt]).is_sat());
        assert_eq!(s.stats.sat_calls, sat_calls, "served by model reuse");
    }

    #[test]
    fn max_value_bounded_var() {
        let mut pool = ExprPool::new();
        let mut s = Solver::new();
        let x = pool.fresh_var("x", 8);
        let c100 = pool.constant(8, 100);
        let le = pool.bin(BinOp::Ule, x, c100);
        assert_eq!(s.max_value(&mut pool, x, &[le]), Some(100));
        assert_eq!(s.min_value(&mut pool, x, &[le]), Some(0));
    }

    #[test]
    fn max_value_of_expression() {
        // max of 2*x where x <= 10 (8-bit): 20
        let mut pool = ExprPool::new();
        let mut s = Solver::new();
        let x = pool.fresh_var("x", 8);
        let two = pool.constant(8, 2);
        let dbl = pool.bin(BinOp::Mul, x, two);
        let c10 = pool.constant(8, 10);
        let le = pool.bin(BinOp::Ule, x, c10);
        assert_eq!(s.max_value(&mut pool, dbl, &[le]), Some(20));
    }

    #[test]
    fn max_value_unconstrained_is_all_ones() {
        let mut pool = ExprPool::new();
        let mut s = Solver::new();
        let x = pool.fresh_var("x", 8);
        assert_eq!(s.max_value(&mut pool, x, &[]), Some(255));
    }

    #[test]
    fn enumerate_values_respects_limit_and_distinctness() {
        let mut pool = ExprPool::new();
        let mut s = Solver::new();
        let x = pool.fresh_var("x", 8);
        let c4 = pool.constant(8, 4);
        let lt = pool.bin(BinOp::Ult, x, c4);
        let mut vals = s.enumerate_values(&mut pool, x, &[lt], 10);
        vals.sort_unstable();
        assert_eq!(vals, vec![0, 1, 2, 3]);
        let capped = s.enumerate_values(&mut pool, x, &[], 3);
        assert_eq!(capped.len(), 3);
    }

    #[test]
    fn unsat_max_value_is_none() {
        let mut pool = ExprPool::new();
        let mut s = Solver::new();
        let x = pool.fresh_var("x", 8);
        let c = pool.constant(8, 1);
        let eq = pool.eq(x, c);
        let zero = pool.constant(8, 0);
        let eq0 = pool.eq(x, zero);
        assert_eq!(s.max_value(&mut pool, x, &[eq, eq0]), None);
    }
}
