//! Tseitin bit-blasting of bitvector expressions into CNF.
//!
//! Each [`ExprId`] becomes a little-endian vector of SAT literals. The
//! encodings follow the classic hardware constructions: ripple-carry adders,
//! shift-add multipliers, barrel shifters, and division by introducing fresh
//! quotient/remainder variables constrained by `q*b + r = a ∧ r < b`.
//!
//! The blaster is **long-lived**: it owns the persistent [`SatSolver`] and
//! memoizes the CNF encoding of every expression it has ever seen, keyed by
//! the pool's stable ids (hash-consing makes structurally equal expressions
//! share an id, so shared subterms across *queries* — not just within one —
//! are encoded exactly once per solver lifetime). Top-level assertions are
//! guarded by activation literals ([`BitBlaster::guard`]): the clause
//! `¬g ∨ bit(e)` is permanent, and a query enables exactly the assertions it
//! needs by passing their guards to
//! [`SatSolver::solve_under_assumptions`]. This is the KLEE/STP-style
//! incremental discipline: bit-blast once, toggle via assumptions forever.

use std::collections::HashMap;

use crate::expr::{BinOp, ExprId, ExprPool, Node, VarId};
use crate::sat::{Lit, SatSolver};

/// Journal of one open guard-recycling frame: the map entries inserted
/// since the frame opened, so the pop can evict exactly those.
#[derive(Default)]
struct GuardFrame {
    cache_added: Vec<ExprId>,
    vars_added: Vec<VarId>,
    guards_added: Vec<ExprId>,
}

/// Persistent bit-blasting context owning its [`SatSolver`].
pub struct BitBlaster {
    sat: SatSolver,
    cache: HashMap<ExprId, Vec<Lit>>,
    var_bits: HashMap<VarId, Vec<Lit>>,
    guards: HashMap<ExprId, Lit>,
    true_lit: Lit,
    frames: Vec<GuardFrame>,
    /// Assertions whose guard (and CNF) already existed when requested.
    pub guard_hits: u64,
    /// Assertions blasted and guarded for the first time.
    pub guards_created: u64,
    /// Guards (and their CNF) freed by popped recycling frames.
    pub guards_recycled: u64,
}

impl Default for BitBlaster {
    fn default() -> Self {
        Self::new()
    }
}

impl BitBlaster {
    /// Creates a blaster with a fresh solver.
    pub fn new() -> Self {
        let mut sat = SatSolver::new();
        let t = sat.new_var();
        sat.add_clause(&[Lit::pos(t)]);
        BitBlaster {
            sat,
            cache: HashMap::new(),
            var_bits: HashMap::new(),
            guards: HashMap::new(),
            true_lit: Lit::pos(t),
            frames: Vec::new(),
            guard_hits: 0,
            guards_created: 0,
            guards_recycled: 0,
        }
    }

    /// Opens a scoped guard-recycling frame. Every expression blasted, SAT
    /// variable allocated, and guard created until the matching
    /// [`BitBlaster::pop_guard_frame`] is transient: the pop deletes its
    /// CNF from the backend and evicts the corresponding memo entries, so
    /// transient constraint blocks (max/min trial bits, enumeration
    /// exclusions) do not grow the persistent instance. Frames nest.
    pub fn push_guard_frame(&mut self) {
        self.sat.push_frame();
        self.frames.push(GuardFrame::default());
    }

    /// Closes the innermost guard-recycling frame, freeing the clauses and
    /// memo entries it introduced (counted in
    /// [`BitBlaster::guards_recycled`]).
    ///
    /// # Panics
    ///
    /// Panics if no frame is open.
    pub fn pop_guard_frame(&mut self) {
        let frame = self.frames.pop().expect("pop without push_guard_frame");
        for id in &frame.cache_added {
            self.cache.remove(id);
        }
        for var in &frame.vars_added {
            self.var_bits.remove(var);
        }
        for id in &frame.guards_added {
            self.guards.remove(id);
        }
        self.guards_recycled += frame.guards_added.len() as u64;
        self.sat.pop_frame();
    }

    /// The underlying SAT solver.
    pub fn sat(&self) -> &SatSolver {
        &self.sat
    }

    /// Mutable access to the underlying SAT solver (to set budgets and run
    /// queries).
    pub fn sat_mut(&mut self) -> &mut SatSolver {
        &mut self.sat
    }

    fn false_lit(&self) -> Lit {
        self.true_lit.negated()
    }

    fn const_lit(&self, b: bool) -> Lit {
        if b {
            self.true_lit
        } else {
            self.false_lit()
        }
    }

    fn is_true(&self, l: Lit) -> bool {
        l == self.true_lit
    }

    fn is_false(&self, l: Lit) -> bool {
        l == self.false_lit()
    }

    fn fresh(&mut self) -> Lit {
        Lit::pos(self.sat.new_var())
    }

    fn lit_and(&mut self, a: Lit, b: Lit) -> Lit {
        if self.is_false(a) || self.is_false(b) {
            return self.false_lit();
        }
        if self.is_true(a) {
            return b;
        }
        if self.is_true(b) {
            return a;
        }
        if a == b {
            return a;
        }
        if a == b.negated() {
            return self.false_lit();
        }
        let y = self.fresh();
        self.sat.add_clause(&[a.negated(), b.negated(), y]);
        self.sat.add_clause(&[a, y.negated()]);
        self.sat.add_clause(&[b, y.negated()]);
        y
    }

    fn lit_or(&mut self, a: Lit, b: Lit) -> Lit {
        let na = a.negated();
        let nb = b.negated();
        let n = self.lit_and(na, nb);
        n.negated()
    }

    fn lit_xor(&mut self, a: Lit, b: Lit) -> Lit {
        if self.is_false(a) {
            return b;
        }
        if self.is_false(b) {
            return a;
        }
        if self.is_true(a) {
            return b.negated();
        }
        if self.is_true(b) {
            return a.negated();
        }
        if a == b {
            return self.false_lit();
        }
        if a == b.negated() {
            return self.true_lit;
        }
        let y = self.fresh();
        self.sat
            .add_clause(&[a.negated(), b.negated(), y.negated()]);
        self.sat.add_clause(&[a, b, y.negated()]);
        self.sat.add_clause(&[a.negated(), b, y]);
        self.sat.add_clause(&[a, b.negated(), y]);
        y
    }

    fn lit_iff(&mut self, a: Lit, b: Lit) -> Lit {
        let x = self.lit_xor(a, b);
        x.negated()
    }

    fn lit_ite(&mut self, c: Lit, t: Lit, e: Lit) -> Lit {
        if self.is_true(c) {
            return t;
        }
        if self.is_false(c) {
            return e;
        }
        if t == e {
            return t;
        }
        let ct = self.lit_and(c, t);
        let nce = self.lit_and(c.negated(), e);
        self.lit_or(ct, nce)
    }

    fn full_adder(&mut self, a: Lit, b: Lit, cin: Lit) -> (Lit, Lit) {
        let axb = self.lit_xor(a, b);
        let sum = self.lit_xor(axb, cin);
        let ab = self.lit_and(a, b);
        let c_axb = self.lit_and(cin, axb);
        let cout = self.lit_or(ab, c_axb);
        (sum, cout)
    }

    fn add_vec(&mut self, a: &[Lit], b: &[Lit], mut carry: Lit) -> (Vec<Lit>, Lit) {
        debug_assert_eq!(a.len(), b.len());
        let mut out = Vec::with_capacity(a.len());
        for i in 0..a.len() {
            let (s, c) = self.full_adder(a[i], b[i], carry);
            out.push(s);
            carry = c;
        }
        (out, carry)
    }

    fn neg_vec(&mut self, a: &[Lit]) -> Vec<Lit> {
        let inv: Vec<Lit> = a.iter().map(|l| l.negated()).collect();
        let zero = vec![self.false_lit(); a.len()];
        let (out, _) = self.add_vec(&inv, &zero, self.true_lit);
        out
    }

    fn mul_vec(&mut self, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
        let w = a.len();
        let mut acc = vec![self.false_lit(); w];
        for (i, &bi) in b.iter().enumerate() {
            if self.is_false(bi) {
                continue;
            }
            // addend = (a << i) gated by b[i]
            let mut addend = vec![self.false_lit(); w];
            for j in i..w {
                addend[j] = self.lit_and(a[j - i], bi);
            }
            let (next, _) = self.add_vec(&acc, &addend, self.false_lit());
            acc = next;
        }
        acc
    }

    /// `a < b` unsigned: no carry out of `a + ~b + 1`.
    fn ult_vec(&mut self, a: &[Lit], b: &[Lit]) -> Lit {
        let nb: Vec<Lit> = b.iter().map(|l| l.negated()).collect();
        let (_, carry) = self.add_vec(a, &nb, self.true_lit);
        carry.negated()
    }

    fn eq_vec(&mut self, a: &[Lit], b: &[Lit]) -> Lit {
        let mut acc = self.true_lit;
        for i in 0..a.len() {
            let e = self.lit_iff(a[i], b[i]);
            acc = self.lit_and(acc, e);
        }
        acc
    }

    fn ite_vec(&mut self, c: Lit, t: &[Lit], e: &[Lit]) -> Vec<Lit> {
        t.iter()
            .zip(e.iter())
            .map(|(&ti, &ei)| self.lit_ite(c, ti, ei))
            .collect()
    }

    fn shift_vec(&mut self, op: BinOp, a: &[Lit], amt: &[Lit]) -> Vec<Lit> {
        let w = a.len();
        let fill = match op {
            BinOp::AShr => a[w - 1],
            _ => self.false_lit(),
        };
        let mut cur = a.to_vec();
        let mut overflow = self.false_lit();
        for (k, &bit) in amt.iter().enumerate() {
            let dist = 1usize.checked_shl(k as u32);
            match dist {
                Some(d) if d < w => {
                    let mut shifted = vec![fill; w];
                    match op {
                        BinOp::Shl => {
                            shifted[d..w].copy_from_slice(&cur[..w - d]);
                            for s in shifted.iter_mut().take(d) {
                                *s = self.false_lit();
                            }
                        }
                        _ => {
                            shifted[..w - d].copy_from_slice(&cur[d..]);
                        }
                    }
                    cur = self.ite_vec(bit, &shifted, &cur);
                }
                _ => {
                    overflow = self.lit_or(overflow, bit);
                }
            }
        }
        let fill_vec = vec![fill; w];
        self.ite_vec(overflow, &fill_vec, &cur)
    }

    fn zext_vec(&self, a: &[Lit], w: usize) -> Vec<Lit> {
        let mut v = a.to_vec();
        v.resize(w, self.false_lit());
        v
    }

    fn divrem(&mut self, a: &[Lit], b: &[Lit]) -> (Vec<Lit>, Vec<Lit>) {
        let w = a.len();
        // Fresh quotient and remainder variables.
        let q: Vec<Lit> = (0..w).map(|_| self.fresh()).collect();
        let r: Vec<Lit> = (0..w).map(|_| self.fresh()).collect();
        // b == 0?
        let zero = vec![self.false_lit(); w];
        let bz = self.eq_vec(b, &zero);
        // In double width: q*b + r == a (no overflow possible).
        let q2 = self.zext_vec(&q, 2 * w);
        let b2 = self.zext_vec(b, 2 * w);
        let r2 = self.zext_vec(&r, 2 * w);
        let a2 = self.zext_vec(a, 2 * w);
        let prod = self.mul_vec(&q2, &b2);
        let (sum, _) = self.add_vec(&prod, &r2, self.false_lit());
        let ok = self.eq_vec(&sum, &a2);
        let rlb = self.ult_vec(&r, b);
        // bz ∨ (q*b + r == a), bz ∨ (r < b)
        self.sat.add_clause(&[bz, ok]);
        self.sat.add_clause(&[bz, rlb]);
        // Results select the SMT-LIB division-by-zero semantics.
        let ones = vec![self.true_lit; w];
        let qres = self.ite_vec(bz, &ones, &q);
        let rres = self.ite_vec(bz, a, &r);
        (qres, rres)
    }

    /// Blasts `id` and returns its bits (LSB first). Encodings are memoized
    /// for the blaster's lifetime.
    pub fn blast(&mut self, pool: &ExprPool, id: ExprId) -> Vec<Lit> {
        if let Some(bits) = self.cache.get(&id) {
            return bits.clone();
        }
        // Iterative DFS so deep path conditions do not overflow the stack.
        let mut stack = vec![id];
        while let Some(&cur) = stack.last() {
            if self.cache.contains_key(&cur) {
                stack.pop();
                continue;
            }
            let deps = self.node_deps(pool, cur);
            let missing: Vec<ExprId> = deps
                .into_iter()
                .filter(|d| !self.cache.contains_key(d))
                .collect();
            if missing.is_empty() {
                let bits = self.blast_node(pool, cur);
                self.cache.insert(cur, bits);
                if let Some(frame) = self.frames.last_mut() {
                    frame.cache_added.push(cur);
                }
                stack.pop();
            } else {
                stack.extend(missing);
            }
        }
        self.cache[&id].clone()
    }

    fn node_deps(&self, pool: &ExprPool, id: ExprId) -> Vec<ExprId> {
        match pool.node(id) {
            Node::Const { .. } | Node::Var { .. } => vec![],
            Node::Not { a } | Node::Extract { a, .. } | Node::Ext { a, .. } => vec![*a],
            Node::Bin { a, b, .. } | Node::Concat { a, b } => vec![*a, *b],
            Node::Ite { cond, t, f } => vec![*cond, *t, *f],
        }
    }

    fn blast_node(&mut self, pool: &ExprPool, id: ExprId) -> Vec<Lit> {
        match pool.node(id).clone() {
            Node::Const { width, bits } => (0..width)
                .map(|i| self.const_lit((bits >> i) & 1 == 1))
                .collect(),
            Node::Var { width, var } => {
                if let Some(bits) = self.var_bits.get(&var) {
                    return bits.clone();
                }
                let bits: Vec<Lit> = (0..width).map(|_| self.fresh()).collect();
                self.var_bits.insert(var, bits.clone());
                if let Some(frame) = self.frames.last_mut() {
                    frame.vars_added.push(var);
                }
                bits
            }
            Node::Not { a } => self.cache[&a].iter().map(|l| l.negated()).collect(),
            Node::Bin { op, a, b } => {
                let av = self.cache[&a].clone();
                let bv = self.cache[&b].clone();
                match op {
                    BinOp::Add => self.add_vec(&av, &bv, self.false_lit()).0,
                    BinOp::Sub => {
                        let nb = self.neg_vec(&bv);
                        self.add_vec(&av, &nb, self.false_lit()).0
                    }
                    BinOp::Mul => self.mul_vec(&av, &bv),
                    BinOp::UDiv => self.divrem(&av, &bv).0,
                    BinOp::URem => self.divrem(&av, &bv).1,
                    BinOp::And => av
                        .iter()
                        .zip(&bv)
                        .map(|(&x, &y)| self.lit_and(x, y))
                        .collect(),
                    BinOp::Or => av
                        .iter()
                        .zip(&bv)
                        .map(|(&x, &y)| self.lit_or(x, y))
                        .collect(),
                    BinOp::Xor => av
                        .iter()
                        .zip(&bv)
                        .map(|(&x, &y)| self.lit_xor(x, y))
                        .collect(),
                    BinOp::Shl | BinOp::LShr | BinOp::AShr => self.shift_vec(op, &av, &bv),
                    BinOp::Eq => vec![self.eq_vec(&av, &bv)],
                    BinOp::Ult => vec![self.ult_vec(&av, &bv)],
                    BinOp::Ule => {
                        let gt = self.ult_vec(&bv, &av);
                        vec![gt.negated()]
                    }
                    BinOp::Slt => {
                        let w = av.len();
                        let sa = av[w - 1];
                        let sb = bv[w - 1];
                        let diff = self.lit_xor(sa, sb);
                        let u = self.ult_vec(&av, &bv);
                        vec![self.lit_ite(diff, sa, u)]
                    }
                    BinOp::Sle => {
                        let w = av.len();
                        let sa = av[w - 1];
                        let sb = bv[w - 1];
                        let diff = self.lit_xor(sa, sb);
                        let gt = self.ult_vec(&bv, &av);
                        let le = gt.negated();
                        vec![self.lit_ite(diff, sa, le)]
                    }
                }
            }
            Node::Ite { cond, t, f } => {
                let c = self.cache[&cond][0];
                let tv = self.cache[&t].clone();
                let fv = self.cache[&f].clone();
                self.ite_vec(c, &tv, &fv)
            }
            Node::Extract { hi, lo, a } => self.cache[&a][lo as usize..=hi as usize].to_vec(),
            Node::Ext { signed, width, a } => {
                let av = self.cache[&a].clone();
                let mut v = av.clone();
                let fill = if signed {
                    *av.last().unwrap()
                } else {
                    self.false_lit()
                };
                v.resize(width as usize, fill);
                v
            }
            Node::Concat { a, b } => {
                let mut v = self.cache[&b].clone();
                v.extend_from_slice(&self.cache[&a]);
                v
            }
        }
    }

    /// The activation literal `g` for a width-1 assertion: the permanent
    /// clause `¬g ∨ e` makes assuming `g` enforce the assertion, while an
    /// unassumed `g` leaves it disabled. Each assertion is bit-blasted once
    /// per blaster lifetime; later requests return the memoized guard.
    pub fn guard(&mut self, pool: &ExprPool, id: ExprId) -> Lit {
        if let Some(&g) = self.guards.get(&id) {
            self.guard_hits += 1;
            return g;
        }
        debug_assert_eq!(pool.width(id), 1);
        let bits = self.blast(pool, id);
        let g = self.fresh();
        self.sat.add_clause(&[g.negated(), bits[0]]);
        self.guards.insert(id, g);
        if let Some(frame) = self.frames.last_mut() {
            frame.guards_added.push(id);
        }
        self.guards_created += 1;
        g
    }

    /// Asserts that a width-1 expression is true, permanently (no guard).
    pub fn assert_true(&mut self, pool: &ExprPool, id: ExprId) {
        debug_assert_eq!(pool.width(id), 1);
        let bits = self.blast(pool, id);
        self.sat.add_clause(&[bits[0]]);
    }

    /// Extracts the value of a declared variable from a SAT model.
    ///
    /// Variables that never occurred in a blasted expression default to 0.
    pub fn var_value(&self, var: VarId, model: &[bool]) -> u64 {
        match self.var_bits.get(&var) {
            None => 0,
            Some(bits) => bits.iter().enumerate().fold(0u64, |acc, (i, l)| {
                let val = if *l == self.true_lit {
                    true
                } else if *l == self.true_lit.negated() {
                    false
                } else {
                    model[l.var() as usize] != l.is_neg()
                };
                acc | ((val as u64) << i)
            }),
        }
    }

    /// Variables that appeared during blasting.
    pub fn blasted_vars(&self) -> impl Iterator<Item = VarId> + '_ {
        self.var_bits.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat::SatOutcome;

    /// Checks that asserting `expr == expected(x)` round-trips through SAT.
    fn solve_for(pool: &mut ExprPool, assertion: ExprId) -> Option<Vec<u64>> {
        let mut bb = BitBlaster::new();
        bb.assert_true(pool, assertion);
        match bb.sat_mut().solve() {
            SatOutcome::Sat(m) => {
                let n = pool.vars().len();
                Some(
                    (0..n as u32)
                        .map(|i| bb.var_value(crate::expr::VarId(i), &m))
                        .collect(),
                )
            }
            SatOutcome::Unsat | SatOutcome::Unknown => None,
        }
    }

    #[test]
    fn solve_linear_equation() {
        // 3*x + 1 == 28  =>  x == 9
        let mut p = ExprPool::new();
        let x = p.fresh_var("x", 8);
        let three = p.constant(8, 3);
        let one = p.constant(8, 1);
        let mul = p.bin(BinOp::Mul, x, three);
        let lhs = p.bin(BinOp::Add, mul, one);
        let rhs = p.constant(8, 28);
        let eq = p.eq(lhs, rhs);
        let model = solve_for(&mut p, eq).expect("sat");
        assert_eq!(model[0], 9);
    }

    #[test]
    fn unsat_contradiction() {
        let mut p = ExprPool::new();
        let x = p.fresh_var("x", 8);
        let c1 = p.constant(8, 1);
        let c2 = p.constant(8, 2);
        let e1 = p.eq(x, c1);
        let e2 = p.eq(x, c2);
        let both = p.and1(e1, e2);
        assert!(solve_for(&mut p, both).is_none());
    }

    #[test]
    fn division_roundtrip() {
        // x / 7 == 5 and x % 7 == 3  =>  x == 38
        let mut p = ExprPool::new();
        let x = p.fresh_var("x", 8);
        let seven = p.constant(8, 7);
        let q = p.bin(BinOp::UDiv, x, seven);
        let r = p.bin(BinOp::URem, x, seven);
        let five = p.constant(8, 5);
        let three = p.constant(8, 3);
        let e1 = p.eq(q, five);
        let e2 = p.eq(r, three);
        let both = p.and1(e1, e2);
        let model = solve_for(&mut p, both).expect("sat");
        assert_eq!(model[0], 38);
    }

    #[test]
    fn shifts_by_symbolic_amount() {
        // (1 << s) == 16  =>  s == 4
        let mut p = ExprPool::new();
        let s = p.fresh_var("s", 8);
        let one = p.constant(8, 1);
        let sh = p.bin(BinOp::Shl, one, s);
        let sixteen = p.constant(8, 16);
        let eq = p.eq(sh, sixteen);
        let model = solve_for(&mut p, eq).expect("sat");
        assert_eq!(model[0], 4);
    }

    #[test]
    fn signed_compare() {
        // x <s 0 and x >s -10  =>  -10 < x < 0
        let mut p = ExprPool::new();
        let x = p.fresh_var("x", 8);
        let zero = p.constant(8, 0);
        let neg10 = p.constant(8, (-10i64) as u64);
        let lt = p.bin(BinOp::Slt, x, zero);
        let gt = p.bin(BinOp::Slt, neg10, x);
        let both = p.and1(lt, gt);
        let model = solve_for(&mut p, both).expect("sat");
        let v = crate::expr::to_signed(8, model[0]);
        assert!((-10..0).contains(&v), "got {v}");
    }

    #[test]
    fn exhaustive_binop_equivalence_4bit() {
        // For every op and all 4-bit operand pairs, constrain vars to the pair
        // and check the solver agrees with the concrete semantics.
        use crate::expr::eval_bin;
        let ops = [
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::UDiv,
            BinOp::URem,
            BinOp::And,
            BinOp::Or,
            BinOp::Xor,
            BinOp::Shl,
            BinOp::LShr,
            BinOp::AShr,
            BinOp::Ult,
            BinOp::Slt,
            BinOp::Ule,
            BinOp::Sle,
            BinOp::Eq,
        ];
        for op in ops {
            // sample a subset of pairs to keep the test fast
            for a in [0u64, 1, 3, 7, 8, 15] {
                for b in [0u64, 1, 2, 7, 8, 15] {
                    let mut p = ExprPool::new();
                    let x = p.fresh_var("x", 4);
                    let y = p.fresh_var("y", 4);
                    let ca = p.constant(4, a);
                    let cb = p.constant(4, b);
                    let ex = p.eq(x, ca);
                    let ey = p.eq(y, cb);
                    let r = p.bin(op, x, y);
                    let expected = eval_bin(op, 4, a, b);
                    let rw = p.width(r);
                    let cexp = p.constant(rw, expected);
                    let er = p.eq(r, cexp);
                    let c1 = p.and1(ex, ey);
                    let all = p.and1(c1, er);
                    assert!(
                        solve_for(&mut p, all).is_some(),
                        "{op:?} {a} {b}: solver disagrees with concrete eval {expected}"
                    );
                }
            }
        }
    }

    #[test]
    fn guarded_assertions_toggle_via_assumptions() {
        // One persistent blaster; two contradictory assertions, each usable
        // alone, and the CNF for each is built exactly once.
        let mut p = ExprPool::new();
        let x = p.fresh_var("x", 8);
        let c1 = p.constant(8, 1);
        let c2 = p.constant(8, 2);
        let e1 = p.eq(x, c1);
        let e2 = p.eq(x, c2);
        let mut bb = BitBlaster::new();
        let g1 = bb.guard(&p, e1);
        let g2 = bb.guard(&p, e2);
        assert_eq!(bb.guards_created, 2);
        match bb.sat_mut().solve_under_assumptions(&[g1]) {
            SatOutcome::Sat(m) => assert_eq!(bb.var_value(crate::expr::VarId(0), &m), 1),
            other => panic!("x==1 alone is sat, got {other:?}"),
        }
        match bb.sat_mut().solve_under_assumptions(&[g2]) {
            SatOutcome::Sat(m) => assert_eq!(bb.var_value(crate::expr::VarId(0), &m), 2),
            other => panic!("x==2 alone is sat, got {other:?}"),
        }
        assert_eq!(
            bb.sat_mut().solve_under_assumptions(&[g1, g2]),
            SatOutcome::Unsat
        );
        // Re-requesting guards is a pure memo lookup.
        let clauses_before = bb.sat().num_clauses();
        assert_eq!(bb.guard(&p, e1), g1);
        assert_eq!(bb.guard(&p, e2), g2);
        assert_eq!(bb.guard_hits, 2);
        assert_eq!(bb.sat().num_clauses(), clauses_before, "no re-blasting");
    }

    #[test]
    fn guard_frames_recycle_transient_clauses() {
        // A guard created inside a frame disappears with the frame: its
        // clauses and variables are freed, the memo forgets it, and the
        // persistent constraints still answer correctly afterwards.
        let mut p = ExprPool::new();
        let x = p.fresh_var("x", 8);
        let c10 = p.constant(8, 10);
        let base = p.bin(BinOp::Ult, x, c10); // x < 10, persistent
        let mut bb = BitBlaster::new();
        let gb = bb.guard(&p, base);
        let clauses0 = bb.sat().num_clauses();
        let vars0 = bb.sat().num_vars();

        bb.push_guard_frame();
        let c3 = p.constant(8, 3);
        let trial = p.eq(x, c3); // transient trial constraint
        let gt = bb.guard(&p, trial);
        assert!(bb.sat().num_clauses() > clauses0, "trial CNF was added");
        match bb.sat_mut().solve_under_assumptions(&[gb, gt]) {
            SatOutcome::Sat(m) => assert_eq!(bb.var_value(crate::expr::VarId(0), &m), 3),
            other => panic!("x<10 and x==3 is sat, got {other:?}"),
        }
        bb.pop_guard_frame();

        assert_eq!(bb.sat().num_clauses(), clauses0, "trial clauses freed");
        assert_eq!(bb.sat().num_vars(), vars0, "trial variables freed");
        assert_eq!(bb.guards_recycled, 1);
        // The persistent assertion still works, and re-guarding the trial
        // re-blasts it (the memo entry is gone).
        match bb.sat_mut().solve_under_assumptions(&[gb]) {
            SatOutcome::Sat(m) => assert!(bb.var_value(crate::expr::VarId(0), &m) < 10),
            other => panic!("x<10 is sat, got {other:?}"),
        }
        let created = bb.guards_created;
        let gt2 = bb.guard(&p, trial);
        assert_eq!(bb.guards_created, created + 1, "recycled guard re-blasts");
        match bb.sat_mut().solve_under_assumptions(&[gb, gt2]) {
            SatOutcome::Sat(m) => assert_eq!(bb.var_value(crate::expr::VarId(0), &m), 3),
            other => panic!("x<10 and x==3 is still sat, got {other:?}"),
        }
    }

    #[test]
    fn nested_guard_frames_pop_in_order() {
        let mut p = ExprPool::new();
        let x = p.fresh_var("x", 8);
        let mut bb = BitBlaster::new();
        let c1 = p.constant(8, 1);
        let c2 = p.constant(8, 2);
        let e1 = p.eq(x, c1);
        let e2 = p.eq(x, c2);
        bb.push_guard_frame();
        let g1 = bb.guard(&p, e1);
        let inner_mark = bb.sat().num_clauses();
        bb.push_guard_frame();
        let g2 = bb.guard(&p, e2);
        assert_eq!(
            bb.sat_mut().solve_under_assumptions(&[g1, g2]),
            SatOutcome::Unsat
        );
        bb.pop_guard_frame();
        assert_eq!(bb.sat().num_clauses(), inner_mark, "inner frame freed");
        // Outer frame's guard still live and satisfiable.
        match bb.sat_mut().solve_under_assumptions(&[g1]) {
            SatOutcome::Sat(m) => assert_eq!(bb.var_value(crate::expr::VarId(0), &m), 1),
            other => panic!("x==1 is sat, got {other:?}"),
        }
        bb.pop_guard_frame();
        assert_eq!(bb.guards_recycled, 2);
        assert!(matches!(bb.sat_mut().solve(), SatOutcome::Sat(_)));
    }
}
