//! A CDCL SAT solver (two-watched literals, 1UIP learning, VSIDS-style
//! activities, phase saving, geometric restarts) with **assumption-based
//! incremental solving** and LBD-tracked learned-clause deletion.
//!
//! This is the backend the bit-blaster targets; it plays the role MiniSat
//! plays inside STP in the paper's stack. Unlike the original fresh-per-query
//! design, the clause database is persistent: callers keep one solver alive,
//! add clauses between queries, and select which guarded constraints are
//! active per query via [`SatSolver::solve_under_assumptions`]. Learned
//! clauses, variable activities, and saved phases all survive across queries
//! — which is where symbolic execution wins, because consecutive
//! path-condition queries differ by a single constraint. The learned-clause
//! database is kept bounded by periodically deleting high-LBD clauses
//! (glucose-style), so a long-lived solver does not grow without limit.

use std::collections::BinaryHeap;

/// A literal: a propositional variable with a sign.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// Creates a literal for `var`, negated if `neg`.
    pub fn new(var: u32, neg: bool) -> Self {
        Lit(var << 1 | neg as u32)
    }

    /// Positive literal for `var`.
    pub fn pos(var: u32) -> Self {
        Lit::new(var, false)
    }

    /// Negative literal for `var`.
    pub fn neg_of(var: u32) -> Self {
        Lit::new(var, true)
    }

    /// The underlying variable.
    pub fn var(self) -> u32 {
        self.0 >> 1
    }

    /// Whether the literal is negated.
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    /// The complement literal.
    #[must_use]
    pub fn negated(self) -> Self {
        Lit(self.0 ^ 1)
    }

    fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Val {
    Undef,
    True,
    False,
}

impl Val {
    fn from_bool(b: bool) -> Self {
        if b {
            Val::True
        } else {
            Val::False
        }
    }
    fn negate(self) -> Self {
        match self {
            Val::Undef => Val::Undef,
            Val::True => Val::False,
            Val::False => Val::True,
        }
    }
}

/// Outcome of a SAT query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SatOutcome {
    /// Satisfiable; the vector holds one polarity per variable.
    Sat(Vec<bool>),
    /// Unsatisfiable (under the query's assumptions, if any).
    Unsat,
    /// The per-query conflict budget was exhausted (solver timeout).
    Unknown,
}

#[derive(Clone, Copy)]
struct OrderEntry(f64, u32);

impl PartialEq for OrderEntry {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0 && self.1 == other.1
    }
}
impl Eq for OrderEntry {}
impl PartialOrd for OrderEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrderEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .total_cmp(&other.0)
            .then_with(|| self.1.cmp(&other.1))
    }
}

/// A stored clause plus the metadata clause deletion needs.
struct Clause {
    lits: Vec<Lit>,
    /// Conflict-derived (deletable) vs. problem clause (permanent).
    learned: bool,
    /// Literal-block distance at learn time: the number of distinct
    /// decision levels in the clause. Low-LBD ("glue") clauses are the ones
    /// worth keeping forever.
    lbd: u32,
}

/// Minimum learned-clause count before the first database reduction.
const MIN_LEARNED_CAP: usize = 2_000;

/// Snapshot of the solver's level-0 extent, taken by
/// [`SatSolver::push_frame`] and restored by [`SatSolver::pop_frame`].
struct FrameMark {
    clauses: usize,
    trail: usize,
    vars: usize,
    num_learned: usize,
    unsat: bool,
    /// Length of the watch-position journal when the frame opened.
    journal: usize,
}

/// CDCL SAT solver over clauses added with [`SatSolver::add_clause`].
///
/// # Examples
///
/// ```
/// use chef_solver::sat::{SatSolver, Lit, SatOutcome};
/// let mut s = SatSolver::new();
/// let a = s.new_var();
/// let b = s.new_var();
/// s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
/// s.add_clause(&[Lit::neg_of(a)]);
/// match s.solve() {
///     SatOutcome::Sat(model) => assert!(model[b as usize]),
///     _ => panic!("satisfiable"),
/// }
/// // Incremental use: the same instance answers queries under assumptions
/// // without touching the clause database.
/// match s.solve_under_assumptions(&[Lit::neg_of(b)]) {
///     SatOutcome::Unsat => {}
///     _ => panic!("b is forced"),
/// }
/// assert!(matches!(s.solve(), SatOutcome::Sat(_)), "database unchanged");
/// ```
pub struct SatSolver {
    clauses: Vec<Clause>,
    watches: Vec<Vec<u32>>,
    assign: Vec<Val>,
    phase: Vec<bool>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    reason: Vec<Option<u32>>,
    level: Vec<u32>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    order: BinaryHeap<OrderEntry>,
    unsat: bool,
    num_learned: usize,
    /// Learned clauses allowed before the next database reduction; grows
    /// geometrically after each reduction.
    learned_cap: usize,
    /// Give up after this many conflicts in one `solve` call (None =
    /// unbounded). Symbolic execution treats the resulting
    /// [`SatOutcome::Unknown`] as an infeasible path, as KLEE/S2E do on
    /// solver timeouts.
    pub conflict_budget: Option<u64>,
    /// Total conflicts encountered across `solve` calls.
    pub conflicts: u64,
    /// Total decisions made across `solve` calls.
    pub decisions: u64,
    /// Total unit propagations across `solve` calls.
    pub propagations: u64,
    /// Learned clauses deleted by database reductions.
    pub clauses_deleted: u64,
    /// Scratch for LBD computation: per-decision-level epoch stamps.
    lbd_stamp: Vec<u64>,
    lbd_epoch: u64,
    /// Active recycling frames (see [`SatSolver::push_frame`]).
    frames: Vec<FrameMark>,
    /// Watch-position journal: every watch-list index pushed to while a
    /// frame is open. [`SatSolver::pop_frame`] purges frame clauses from
    /// exactly these lists instead of sweeping every list, making pops
    /// O(frame work). Empty whenever no frame is open.
    watch_journal: Vec<u32>,
}

impl Default for SatSolver {
    fn default() -> Self {
        Self::new()
    }
}

impl SatSolver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        SatSolver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assign: Vec::new(),
            phase: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            reason: Vec::new(),
            level: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            order: BinaryHeap::new(),
            unsat: false,
            num_learned: 0,
            learned_cap: MIN_LEARNED_CAP,
            conflict_budget: None,
            conflicts: 0,
            decisions: 0,
            propagations: 0,
            clauses_deleted: 0,
            lbd_stamp: Vec::new(),
            lbd_epoch: 0,
            frames: Vec::new(),
            watch_journal: Vec::new(),
        }
    }

    /// Number of variables allocated so far.
    pub fn num_vars(&self) -> u32 {
        self.assign.len() as u32
    }

    /// Number of clauses currently stored (problem + learned).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Number of learned clauses currently retained.
    pub fn num_learned(&self) -> usize {
        self.num_learned
    }

    /// Allocates a fresh variable and returns its index.
    pub fn new_var(&mut self) -> u32 {
        let v = self.assign.len() as u32;
        self.assign.push(Val::Undef);
        self.phase.push(false);
        self.reason.push(None);
        self.level.push(0);
        self.activity.push(0.0);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.order.push(OrderEntry(0.0, v));
        v
    }

    fn value_lit(&self, l: Lit) -> Val {
        let v = self.assign[l.var() as usize];
        if l.is_neg() {
            v.negate()
        } else {
            v
        }
    }

    /// Adds a clause; returns `false` if the formula is already trivially
    /// unsatisfiable (empty clause or conflicting units at level 0).
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        if self.unsat {
            return false;
        }
        debug_assert!(
            self.trail_lim.is_empty(),
            "clauses must be added at level 0"
        );
        let mut c: Vec<Lit> = Vec::with_capacity(lits.len());
        for &l in lits {
            match self.value_lit(l) {
                Val::True => return true, // satisfied at level 0
                Val::False => continue,   // drop falsified literal
                Val::Undef => {
                    if c.contains(&l.negated()) {
                        return true; // tautology
                    }
                    if !c.contains(&l) {
                        c.push(l);
                    }
                }
            }
        }
        match c.len() {
            0 => {
                self.unsat = true;
                false
            }
            1 => {
                self.enqueue(c[0], None);
                if self.propagate().is_some() {
                    self.unsat = true;
                    return false;
                }
                true
            }
            _ => {
                self.attach_clause(c, false, 0);
                true
            }
        }
    }

    /// Records a watch-list push in the journal while a frame is open (a
    /// single predictable branch on the propagate hot path; no cost when
    /// no frame is active).
    #[inline]
    fn journal_watch(&mut self, list: usize) {
        if !self.frames.is_empty() {
            self.watch_journal.push(list as u32);
        }
    }

    fn attach_clause(&mut self, lits: Vec<Lit>, learned: bool, lbd: u32) -> u32 {
        let ci = self.clauses.len() as u32;
        self.journal_watch(lits[0].index());
        self.journal_watch(lits[1].index());
        self.watches[lits[0].index()].push(ci);
        self.watches[lits[1].index()].push(ci);
        if learned {
            self.num_learned += 1;
        }
        self.clauses.push(Clause { lits, learned, lbd });
        ci
    }

    fn enqueue(&mut self, l: Lit, reason: Option<u32>) {
        debug_assert_eq!(self.value_lit(l), Val::Undef);
        let v = l.var() as usize;
        self.assign[v] = Val::from_bool(!l.is_neg());
        self.phase[v] = !l.is_neg();
        self.reason[v] = reason;
        self.level[v] = self.trail_lim.len() as u32;
        self.trail.push(l);
    }

    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.propagations += 1;
            let false_lit = p.negated();
            let mut ws = std::mem::take(&mut self.watches[false_lit.index()]);
            let mut i = 0;
            while i < ws.len() {
                let ci = ws[i] as usize;
                // Make sure the false literal is at position 1.
                if self.clauses[ci].lits[0] == false_lit {
                    self.clauses[ci].lits.swap(0, 1);
                }
                let first = self.clauses[ci].lits[0];
                if self.value_lit(first) == Val::True {
                    i += 1;
                    continue;
                }
                // Look for a replacement watch.
                let mut found = false;
                for k in 2..self.clauses[ci].lits.len() {
                    let lk = self.clauses[ci].lits[k];
                    if self.value_lit(lk) != Val::False {
                        self.clauses[ci].lits.swap(1, k);
                        self.journal_watch(lk.index());
                        self.watches[lk.index()].push(ci as u32);
                        ws.swap_remove(i);
                        found = true;
                        break;
                    }
                }
                if found {
                    continue;
                }
                if self.value_lit(first) == Val::False {
                    // Conflict: restore remaining watches.
                    self.watches[false_lit.index()] = ws;
                    self.qhead = self.trail.len();
                    return Some(ci as u32);
                }
                self.enqueue(first, Some(ci as u32));
                i += 1;
            }
            self.watches[false_lit.index()] = ws;
        }
        None
    }

    fn bump_var(&mut self, v: u32) {
        self.activity[v as usize] += self.var_inc;
        if self.activity[v as usize] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order.push(OrderEntry(self.activity[v as usize], v));
    }

    fn analyze(&mut self, confl: u32) -> (Vec<Lit>, u32) {
        let mut learned: Vec<Lit> = vec![Lit(0)]; // placeholder for asserting literal
        let mut seen = vec![false; self.assign.len()];
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut confl = confl as usize;
        let mut index = self.trail.len();
        let cur_level = self.trail_lim.len() as u32;
        loop {
            let start = if p.is_none() { 0 } else { 1 };
            for k in start..self.clauses[confl].lits.len() {
                let q = self.clauses[confl].lits[k];
                let v = q.var() as usize;
                if !seen[v] && self.level[v] > 0 {
                    seen[v] = true;
                    self.bump_var(q.var());
                    if self.level[v] == cur_level {
                        counter += 1;
                    } else {
                        learned.push(q);
                    }
                }
            }
            // Select next literal on the trail to resolve on.
            loop {
                index -= 1;
                let l = self.trail[index];
                if seen[l.var() as usize] {
                    p = Some(l);
                    break;
                }
            }
            let pv = p.unwrap().var() as usize;
            seen[pv] = false;
            counter -= 1;
            if counter == 0 {
                learned[0] = p.unwrap().negated();
                break;
            }
            confl = self.reason[pv].expect("non-decision must have a reason") as usize;
        }
        // Backjump level = max level among the non-asserting literals.
        let bl = learned[1..]
            .iter()
            .map(|l| self.level[l.var() as usize])
            .max()
            .unwrap_or(0);
        // Move a literal of the backjump level to position 1 (watch invariant).
        if learned.len() > 1 {
            let mut mi = 1;
            for k in 2..learned.len() {
                if self.level[learned[k].var() as usize] > self.level[learned[mi].var() as usize] {
                    mi = k;
                }
            }
            learned.swap(1, mi);
        }
        (learned, bl)
    }

    /// Literal-block distance of a clause whose literals are all assigned:
    /// the number of distinct decision levels it spans. Runs once per
    /// conflict, so it uses epoch-stamped scratch instead of allocating.
    fn clause_lbd(&mut self, lits: &[Lit]) -> u32 {
        self.lbd_epoch += 1;
        if self.lbd_stamp.len() <= self.trail_lim.len() {
            self.lbd_stamp.resize(self.trail_lim.len() + 1, 0);
        }
        let mut n = 0u32;
        for l in lits {
            let lvl = self.level[l.var() as usize] as usize;
            if self.lbd_stamp[lvl] != self.lbd_epoch {
                self.lbd_stamp[lvl] = self.lbd_epoch;
                n += 1;
            }
        }
        n
    }

    fn cancel_until(&mut self, lvl: u32) {
        while self.trail_lim.len() as u32 > lvl {
            let lim = self.trail_lim.pop().unwrap();
            while self.trail.len() > lim {
                let l = self.trail.pop().unwrap();
                let v = l.var() as usize;
                self.assign[v] = Val::Undef;
                self.reason[v] = None;
                self.order.push(OrderEntry(self.activity[v], l.var()));
            }
        }
        self.qhead = self.trail.len();
    }

    fn pick_branch_var(&mut self) -> Option<u32> {
        while let Some(OrderEntry(_, v)) = self.order.pop() {
            // Entries can outlive their variable when a frame pop truncates
            // the variable arrays; skip those.
            if (v as usize) < self.assign.len() && self.assign[v as usize] == Val::Undef {
                return Some(v);
            }
        }
        // Heap may have gone stale; linear fallback.
        (0..self.assign.len() as u32).find(|&v| self.assign[v as usize] == Val::Undef)
    }

    /// Deletes the worst half of the deletable learned clauses (by LBD,
    /// then length) once the learned database outgrows its cap. Glue
    /// clauses (LBD ≤ 2) are always kept. Must run at decision level 0.
    fn maybe_reduce_db(&mut self) {
        debug_assert!(self.trail_lim.is_empty());
        // Reduction remaps clause indices, which would invalidate the marks
        // of any open frame; frames are short-lived, so just wait them out.
        if self.num_learned <= self.learned_cap || !self.frames.is_empty() {
            return;
        }
        // Clause indices are about to be remapped; level-0 reasons are never
        // resolved on (analyze skips level-0 literals), so drop them rather
        // than remap.
        for i in 0..self.trail.len() {
            let v = self.trail[i].var() as usize;
            self.reason[v] = None;
        }
        let mut cand: Vec<u32> = (0..self.clauses.len() as u32)
            .filter(|&i| {
                let c = &self.clauses[i as usize];
                c.learned && c.lbd > 2
            })
            .collect();
        // Worst first: highest LBD, then longest, then oldest last (stable
        // deterministic order).
        cand.sort_by_key(|&i| {
            let c = &self.clauses[i as usize];
            (std::cmp::Reverse(c.lbd), std::cmp::Reverse(c.lits.len()), i)
        });
        let drop_n = cand.len() / 2;
        if drop_n == 0 {
            // Nothing deletable (all glue): raise the cap so the check does
            // not run on every solve.
            self.learned_cap += self.learned_cap / 2;
            return;
        }
        let mut drop = vec![false; self.clauses.len()];
        for &i in &cand[..drop_n] {
            drop[i as usize] = true;
        }
        for w in &mut self.watches {
            w.clear();
        }
        let old = std::mem::take(&mut self.clauses);
        self.clauses.reserve(old.len() - drop_n);
        for (i, mut c) in old.into_iter().enumerate() {
            if drop[i] {
                continue;
            }
            // Re-establish the watch invariant: watch two literals that are
            // not falsified at level 0 (rank True < Undef < False). A kept
            // clause always has either a true literal or two non-false ones,
            // because level-0 propagation is complete.
            let rank = |s: &Self, l: Lit| match s.value_lit(l) {
                Val::True => 0u8,
                Val::Undef => 1,
                Val::False => 2,
            };
            let mut best = 0;
            for k in 1..c.lits.len() {
                if rank(self, c.lits[k]) < rank(self, c.lits[best]) {
                    best = k;
                }
            }
            c.lits.swap(0, best);
            let mut best2 = 1;
            for k in 2..c.lits.len() {
                if rank(self, c.lits[k]) < rank(self, c.lits[best2]) {
                    best2 = k;
                }
            }
            c.lits.swap(1, best2);
            let ci = self.clauses.len() as u32;
            self.watches[c.lits[0].index()].push(ci);
            self.watches[c.lits[1].index()].push(ci);
            self.clauses.push(c);
        }
        self.num_learned -= drop_n;
        self.clauses_deleted += drop_n as u64;
        self.learned_cap += self.learned_cap / 2;
    }

    /// Opens a recycling frame: everything added after this point —
    /// variables, clauses (problem and learned), and level-0 implications —
    /// is removed again by the matching [`SatSolver::pop_frame`]. Frames
    /// nest. Must be called at decision level 0 (i.e. between queries).
    ///
    /// This is how transient constraint blocks (the trial constraints of a
    /// max/min search, the exclusion clauses of value enumeration) stay
    /// bounded: their CNF lives only for the duration of the frame instead
    /// of accumulating in the persistent database forever.
    pub fn push_frame(&mut self) {
        debug_assert!(self.trail_lim.is_empty(), "frames open at level 0");
        self.frames.push(FrameMark {
            clauses: self.clauses.len(),
            trail: self.trail.len(),
            vars: self.assign.len(),
            num_learned: self.num_learned,
            unsat: self.unsat,
            journal: self.watch_journal.len(),
        });
    }

    /// Closes the innermost recycling frame, deleting every clause and
    /// variable added since the matching [`SatSolver::push_frame`] and
    /// undoing level-0 implications derived in between. Learned clauses
    /// from the frame are dropped wholesale — they may resolve on removed
    /// clauses, so none of them is guaranteed to remain implied.
    ///
    /// # Panics
    ///
    /// Panics if no frame is open.
    pub fn pop_frame(&mut self) {
        debug_assert!(self.trail_lim.is_empty(), "frames close at level 0");
        let mark = self.frames.pop().expect("pop_frame without push_frame");
        // Undo level-0 assignments enqueued during the frame.
        while self.trail.len() > mark.trail {
            let l = self.trail.pop().unwrap();
            let v = l.var() as usize;
            self.assign[v] = Val::Undef;
            self.reason[v] = None;
            if v < mark.vars {
                self.order.push(OrderEntry(self.activity[v], l.var()));
            }
        }
        self.qhead = self.trail.len();
        // Drop frame clauses and the watch-list references to them.
        // Propagation moves watches between lists, so the frame's clause
        // indices can sit anywhere — but every *push* since the frame
        // opened is in the journal, so purging exactly the journaled lists
        // is enough: pops cost O(watch work done during the frame), not
        // O(total watch entries).
        for c in self.clauses.drain(mark.clauses..) {
            if c.learned {
                self.num_learned -= 1;
            }
        }
        debug_assert_eq!(self.num_learned, mark.num_learned);
        let cap = mark.clauses as u32;
        let mut touched: Vec<u32> = self.watch_journal[mark.journal..].to_vec();
        touched.sort_unstable();
        touched.dedup();
        for &list in &touched {
            if let Some(w) = self.watches.get_mut(list as usize) {
                w.retain(|&ci| ci < cap);
            }
        }
        if self.frames.is_empty() {
            self.watch_journal.clear();
        }
        // With frames still open, the popped region's entries stay in the
        // journal: a pre-frame clause whose watch moved during this frame
        // may sit in a list only this region names, and an outer pop must
        // rescan it to purge *outer*-frame clauses from it.
        // Drop frame variables. Kept clauses predate the frame and can only
        // reference pre-frame variables, so truncation is safe; stale order
        // heap entries are skipped by `pick_branch_var`.
        self.assign.truncate(mark.vars);
        self.phase.truncate(mark.vars);
        self.reason.truncate(mark.vars);
        self.level.truncate(mark.vars);
        self.activity.truncate(mark.vars);
        self.watches.truncate(2 * mark.vars);
        self.unsat = mark.unsat;
    }

    /// Number of open recycling frames.
    pub fn frame_depth(&self) -> usize {
        self.frames.len()
    }

    /// Runs the CDCL search to completion with no assumptions.
    pub fn solve(&mut self) -> SatOutcome {
        self.solve_under_assumptions(&[])
    }

    /// Runs the CDCL search with `assumptions` decided (in order) before any
    /// free decision. Returns [`SatOutcome::Unsat`] if the formula is
    /// unsatisfiable *under the assumptions*; the clause database, learned
    /// clauses, activities, and saved phases persist either way, so the next
    /// query starts from everything this one discovered.
    pub fn solve_under_assumptions(&mut self, assumptions: &[Lit]) -> SatOutcome {
        if self.unsat {
            return SatOutcome::Unsat;
        }
        debug_assert!(self.trail_lim.is_empty(), "solve must start at level 0");
        if self.propagate().is_some() {
            self.unsat = true;
            return SatOutcome::Unsat;
        }
        self.maybe_reduce_db();
        let mut restart_budget = 128u64;
        let mut conflicts_here = 0u64;
        let mut conflicts_total = 0u64;
        loop {
            if let Some(confl) = self.propagate() {
                self.conflicts += 1;
                conflicts_here += 1;
                conflicts_total += 1;
                if let Some(budget) = self.conflict_budget {
                    if conflicts_total > budget {
                        self.cancel_until(0);
                        return SatOutcome::Unknown;
                    }
                }
                if self.trail_lim.is_empty() {
                    self.unsat = true;
                    return SatOutcome::Unsat;
                }
                let (learned, bl) = self.analyze(confl);
                // LBD is computed at conflict time, while every literal of
                // the learned clause is still assigned.
                let lbd = self.clause_lbd(&learned);
                self.cancel_until(bl);
                if learned.len() == 1 {
                    self.enqueue(learned[0], None);
                } else {
                    let asserting = learned[0];
                    let ci = self.attach_clause(learned, true, lbd);
                    self.enqueue(asserting, Some(ci));
                }
                self.var_inc /= 0.95;
                if conflicts_here >= restart_budget {
                    conflicts_here = 0;
                    restart_budget = restart_budget + restart_budget / 2;
                    self.cancel_until(0);
                }
            } else if self.trail_lim.len() < assumptions.len() {
                // Next assumption becomes the next decision.
                let a = assumptions[self.trail_lim.len()];
                match self.value_lit(a) {
                    Val::True => {
                        // Already implied: open an (empty) decision level so
                        // the remaining assumptions keep their positions.
                        self.trail_lim.push(self.trail.len());
                    }
                    Val::False => {
                        // The formula (plus earlier assumptions) forces the
                        // complement: unsatisfiable under the assumptions,
                        // but the formula itself stays live.
                        self.cancel_until(0);
                        return SatOutcome::Unsat;
                    }
                    Val::Undef => {
                        self.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        self.enqueue(a, None);
                    }
                }
            } else {
                match self.pick_branch_var() {
                    None => {
                        let model = self.assign.iter().map(|v| *v == Val::True).collect();
                        self.cancel_until(0);
                        return SatOutcome::Sat(model);
                    }
                    Some(v) => {
                        self.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let lit = Lit::new(v, !self.phase[v as usize]);
                        self.enqueue(lit, None);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_sat() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        s.add_clause(&[Lit::pos(a)]);
        assert!(matches!(s.solve(), SatOutcome::Sat(m) if m[a as usize]));
    }

    #[test]
    fn trivial_unsat() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        s.add_clause(&[Lit::pos(a)]);
        s.add_clause(&[Lit::neg_of(a)]);
        assert_eq!(s.solve(), SatOutcome::Unsat);
    }

    #[test]
    fn chain_propagation() {
        let mut s = SatSolver::new();
        let vars: Vec<u32> = (0..10).map(|_| s.new_var()).collect();
        for w in vars.windows(2) {
            s.add_clause(&[Lit::neg_of(w[0]), Lit::pos(w[1])]);
        }
        s.add_clause(&[Lit::pos(vars[0])]);
        match s.solve() {
            SatOutcome::Sat(m) => assert!(vars.iter().all(|&v| m[v as usize])),
            SatOutcome::Unsat => panic!("should be satisfiable"),
            SatOutcome::Unknown => panic!("budget hit on tiny instance"),
        }
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // 3 pigeons, 2 holes: var p*2+h means pigeon p in hole h.
        let mut s = SatSolver::new();
        let v: Vec<u32> = (0..6).map(|_| s.new_var()).collect();
        for p in 0..3 {
            s.add_clause(&[Lit::pos(v[p * 2]), Lit::pos(v[p * 2 + 1])]);
        }
        for h in 0..2 {
            for p1 in 0..3 {
                for p2 in (p1 + 1)..3 {
                    s.add_clause(&[Lit::neg_of(v[p1 * 2 + h]), Lit::neg_of(v[p2 * 2 + h])]);
                }
            }
        }
        assert_eq!(s.solve(), SatOutcome::Unsat);
    }

    #[test]
    fn xor_chain_sat_with_forced_model() {
        // (a xor b) and (b xor c) and a  =>  model a=1, b=0, c=1
        let mut s = SatSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        let c = s.new_var();
        // a xor b
        s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
        s.add_clause(&[Lit::neg_of(a), Lit::neg_of(b)]);
        // b xor c
        s.add_clause(&[Lit::pos(b), Lit::pos(c)]);
        s.add_clause(&[Lit::neg_of(b), Lit::neg_of(c)]);
        s.add_clause(&[Lit::pos(a)]);
        match s.solve() {
            SatOutcome::Sat(m) => {
                assert!(m[a as usize]);
                assert!(!m[b as usize]);
                assert!(m[c as usize]);
            }
            SatOutcome::Unsat => panic!("satisfiable"),
            SatOutcome::Unknown => panic!("budget hit on tiny instance"),
        }
    }

    #[test]
    fn random_3sat_smoke() {
        // Deterministic pseudo-random 3-SAT instances around the easy regime;
        // checks models actually satisfy all clauses.
        let mut seed = 0x12345678u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _case in 0..20 {
            let nv = 30u32;
            let nc = 90;
            let mut s = SatSolver::new();
            for _ in 0..nv {
                s.new_var();
            }
            let mut clauses = Vec::new();
            for _ in 0..nc {
                let mut c = Vec::new();
                for _ in 0..3 {
                    let v = (next() % nv as u64) as u32;
                    let neg = next() % 2 == 0;
                    c.push(Lit::new(v, neg));
                }
                clauses.push(c.clone());
                s.add_clause(&c);
            }
            if let SatOutcome::Sat(m) = s.solve() {
                for c in &clauses {
                    assert!(
                        c.iter().any(|l| m[l.var() as usize] != l.is_neg()),
                        "model must satisfy every clause"
                    );
                }
            }
        }
    }

    #[test]
    fn assumptions_select_among_guarded_constraints() {
        // Guard g1 -> a, guard g2 -> !a: each guard alone is satisfiable,
        // both together are not, and no query damages the database.
        let mut s = SatSolver::new();
        let a = s.new_var();
        let g1 = s.new_var();
        let g2 = s.new_var();
        s.add_clause(&[Lit::neg_of(g1), Lit::pos(a)]);
        s.add_clause(&[Lit::neg_of(g2), Lit::neg_of(a)]);
        match s.solve_under_assumptions(&[Lit::pos(g1)]) {
            SatOutcome::Sat(m) => assert!(m[a as usize]),
            other => panic!("g1 alone is sat, got {other:?}"),
        }
        match s.solve_under_assumptions(&[Lit::pos(g2)]) {
            SatOutcome::Sat(m) => assert!(!m[a as usize]),
            other => panic!("g2 alone is sat, got {other:?}"),
        }
        assert_eq!(
            s.solve_under_assumptions(&[Lit::pos(g1), Lit::pos(g2)]),
            SatOutcome::Unsat
        );
        // The assumption failure must not have poisoned the formula.
        assert!(matches!(
            s.solve_under_assumptions(&[Lit::pos(g1)]),
            SatOutcome::Sat(_)
        ));
        assert!(matches!(s.solve(), SatOutcome::Sat(_)));
    }

    #[test]
    fn assumption_unsat_requires_learning() {
        // A pigeonhole instance activated by a guard: refuting it requires
        // real conflict analysis below the assumption level, and afterwards
        // the unguarded formula must still be satisfiable.
        let mut s = SatSolver::new();
        let g = s.new_var();
        let v: Vec<u32> = (0..6).map(|_| s.new_var()).collect();
        for p in 0..3 {
            s.add_clause(&[Lit::neg_of(g), Lit::pos(v[p * 2]), Lit::pos(v[p * 2 + 1])]);
        }
        for h in 0..2 {
            for p1 in 0..3 {
                for p2 in (p1 + 1)..3 {
                    s.add_clause(&[
                        Lit::neg_of(g),
                        Lit::neg_of(v[p1 * 2 + h]),
                        Lit::neg_of(v[p2 * 2 + h]),
                    ]);
                }
            }
        }
        assert_eq!(s.solve_under_assumptions(&[Lit::pos(g)]), SatOutcome::Unsat);
        assert!(matches!(s.solve(), SatOutcome::Sat(_)));
        // Repeating the refuted query is answered again (typically faster,
        // via the learned unit on g).
        assert_eq!(s.solve_under_assumptions(&[Lit::pos(g)]), SatOutcome::Unsat);
    }

    #[test]
    fn incremental_solves_accumulate_learned_clauses() {
        // xorshift random 3-SAT under rotating assumptions: results must be
        // internally consistent and the database must survive many queries.
        let mut seed = 0xdeadbeefu64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        let mut s = SatSolver::new();
        let nv = 24u32;
        for _ in 0..nv {
            s.new_var();
        }
        for _ in 0..70 {
            let c: Vec<Lit> = (0..3)
                .map(|_| Lit::new((next() % nv as u64) as u32, next() % 2 == 0))
                .collect();
            s.add_clause(&c);
        }
        let baseline = matches!(s.solve(), SatOutcome::Sat(_));
        for v in 0..nv {
            for neg in [false, true] {
                let out = s.solve_under_assumptions(&[Lit::new(v, neg)]);
                if let SatOutcome::Sat(m) = &out {
                    assert_eq!(m[v as usize], !neg, "assumption must hold in model");
                }
                if !baseline {
                    assert_eq!(
                        out,
                        SatOutcome::Unsat,
                        "unsat stays unsat under assumptions"
                    );
                }
            }
        }
        // And the unassumed query still agrees with the baseline.
        assert_eq!(matches!(s.solve(), SatOutcome::Sat(_)), baseline);
    }

    #[test]
    fn reduce_db_keeps_answers_correct() {
        // Force many conflicts (hard random instances) with a tiny learned
        // cap by solving repeatedly; clause deletion must never change
        // answers. We drive deletion indirectly: many queries over guarded
        // subformulas accumulate learned clauses past the cap.
        let mut seed = 0x5eed5eedu64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        let mut s = SatSolver::new();
        s.learned_cap = 8; // tiny cap so reduction actually triggers
        let nv = 26u32;
        for _ in 0..nv {
            s.new_var();
        }
        let mut clauses = Vec::new();
        for _ in 0..104 {
            let c: Vec<Lit> = (0..3)
                .map(|_| Lit::new((next() % nv as u64) as u32, next() % 2 == 0))
                .collect();
            clauses.push(c.clone());
            s.add_clause(&c);
        }
        let mut outcomes = Vec::new();
        for round in 0..40 {
            let a = Lit::new(round % nv, round % 3 == 0);
            let out = s.solve_under_assumptions(&[a]);
            if let SatOutcome::Sat(m) = &out {
                for c in &clauses {
                    assert!(
                        c.iter().any(|l| m[l.var() as usize] != l.is_neg()),
                        "model must satisfy every clause even after reduction"
                    );
                }
            }
            outcomes.push(matches!(out, SatOutcome::Sat(_)));
        }
        // Determinism of repeated identical queries.
        for round in 0..40u32 {
            let a = Lit::new(round % nv, round % 3 == 0);
            let out = s.solve_under_assumptions(&[a]);
            assert_eq!(
                matches!(out, SatOutcome::Sat(_)),
                outcomes[round as usize],
                "sat/unsat answers are stable across the solver's lifetime"
            );
        }
    }

    /// Propagation stays correct after heavy (and nested) push/pop churn:
    /// the watch-position journal must purge every reference to a popped
    /// clause — including watches that migrated across lists during frame
    /// propagation — while leaving pre-frame watches intact wherever they
    /// moved.
    #[test]
    fn propagate_correct_after_push_pop_churn() {
        let mut seed = 0xc0ffee11u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        let mut s = SatSolver::new();
        let nv = 18u32;
        for _ in 0..nv {
            s.new_var();
        }
        // A persistent random 3-SAT base, solved once as the reference.
        let mut base: Vec<Vec<Lit>> = Vec::new();
        for _ in 0..60 {
            let c: Vec<Lit> = (0..3)
                .map(|_| Lit::new((next() % nv as u64) as u32, next() % 2 == 0))
                .collect();
            base.push(c.clone());
            s.add_clause(&c);
        }
        let reference: Vec<bool> = (0..nv)
            .map(|v| {
                matches!(
                    s.solve_under_assumptions(&[Lit::pos(v)]),
                    SatOutcome::Sat(_)
                )
            })
            .collect();
        // Churn: frames add transient vars and clauses that tangle with the
        // base (forcing watch migrations on base clauses), solve under
        // assumptions (learning inside the frame), then pop. Every third
        // round nests a second frame.
        for round in 0..50u64 {
            let clauses_before = s.num_clauses();
            s.push_frame();
            let t1 = s.new_var();
            let t2 = s.new_var();
            let b = (next() % nv as u64) as u32;
            s.add_clause(&[Lit::pos(t1), Lit::pos(t2), Lit::pos(b)]);
            s.add_clause(&[Lit::neg_of(t1), Lit::neg_of(b)]);
            let _ = s.solve_under_assumptions(&[Lit::pos(t1)]);
            if round % 3 == 0 {
                s.push_frame();
                let t3 = s.new_var();
                s.add_clause(&[Lit::neg_of(t3), Lit::pos(t1)]);
                s.add_clause(&[Lit::pos(t3), Lit::neg_of(t2)]);
                let _ = s.solve_under_assumptions(&[Lit::neg_of(t3)]);
                s.pop_frame();
            }
            let _ = s.solve();
            s.pop_frame();
            assert_eq!(s.num_clauses(), clauses_before, "no clause leaks");
            assert_eq!(s.num_vars(), nv, "no variable leaks");
        }
        // After churn every query answers exactly as before, and models
        // satisfy the base (i.e. no base watch was lost and no stale watch
        // poisons propagation).
        for v in 0..nv {
            let out = s.solve_under_assumptions(&[Lit::pos(v)]);
            assert_eq!(
                matches!(out, SatOutcome::Sat(_)),
                reference[v as usize],
                "churn must not change answers (var {v})"
            );
            if let SatOutcome::Sat(m) = out {
                for c in &base {
                    assert!(
                        c.iter().any(|l| m[l.var() as usize] != l.is_neg()),
                        "model violates a base clause after churn"
                    );
                }
            }
        }
        // And fresh unit clauses still propagate through the base chains.
        let probe = (0..nv).find(|&v| reference[v as usize]).unwrap();
        s.add_clause(&[Lit::pos(probe)]);
        match s.solve() {
            SatOutcome::Sat(m) => assert!(m[probe as usize]),
            other => panic!("expected sat, got {other:?}"),
        }
    }
}
