//! Bitvector expression DAG with hash-consing and constant folding.
//!
//! Expressions play the role STP's abstract syntax plays in the paper: every
//! value the symbolic executor manipulates is an [`ExprId`] into an
//! [`ExprPool`]. Constants fold eagerly, so fully concrete execution never
//! allocates fresh nodes beyond the interned constants.

use std::collections::HashMap;
use std::fmt;

/// Reference to an interned expression node inside an [`ExprPool`].
///
/// `ExprId` is a plain index: it is only meaningful together with the pool
/// that created it. Copying is free, equality is structural (hash-consing
/// guarantees structurally equal nodes share an id).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExprId(pub(crate) u32);

impl fmt::Debug for ExprId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl ExprId {
    /// The raw pool index (creation order). Only meaningful together with
    /// the owning pool; serializers (`chef_symex::Snapshot`) use it as a
    /// stable node reference.
    pub fn raw(self) -> u32 {
        self.0
    }
}

/// Identifier of a symbolic input variable.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct VarId(pub u32);

/// Binary operators over equal-width bitvectors.
///
/// Comparison operators (`Eq`, `Ult`, `Slt`, `Ule`, `Sle`) yield width-1
/// results; all others preserve the operand width.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    /// Unsigned division; division by zero yields all-ones (SMT-LIB).
    UDiv,
    /// Unsigned remainder; remainder by zero yields the dividend (SMT-LIB).
    URem,
    And,
    Or,
    Xor,
    /// Left shift; amounts `>= width` yield zero.
    Shl,
    /// Logical right shift; amounts `>= width` yield zero.
    LShr,
    /// Arithmetic right shift; amounts `>= width` fill with the sign bit.
    AShr,
    Eq,
    Ult,
    Slt,
    Ule,
    Sle,
}

impl BinOp {
    /// Whether the operator commutes, used to canonicalize operand order.
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            BinOp::Add | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Eq
        )
    }

    /// Whether the result has width 1 regardless of operand width.
    pub fn is_predicate(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ult | BinOp::Slt | BinOp::Ule | BinOp::Sle
        )
    }
}

/// Interned expression node. Widths are in bits, `1..=64`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Node {
    /// Constant with the low `width` bits of `bits` significant.
    Const { width: u8, bits: u64 },
    /// Free symbolic variable.
    Var { width: u8, var: VarId },
    /// Bitwise complement.
    Not { a: ExprId },
    /// Binary operation; see [`BinOp`] for width rules.
    Bin { op: BinOp, a: ExprId, b: ExprId },
    /// If-then-else on a width-1 condition.
    Ite { cond: ExprId, t: ExprId, f: ExprId },
    /// Bit slice `[hi:lo]` inclusive; result width `hi - lo + 1`.
    Extract { hi: u8, lo: u8, a: ExprId },
    /// Zero- or sign-extension to `width`.
    Ext { signed: bool, width: u8, a: ExprId },
    /// Concatenation: `a` occupies the high bits, `b` the low bits.
    Concat { a: ExprId, b: ExprId },
}

/// Mask covering the low `w` bits.
#[inline]
pub fn mask(w: u8) -> u64 {
    debug_assert!((1..=64).contains(&w));
    if w == 64 {
        u64::MAX
    } else {
        (1u64 << w) - 1
    }
}

#[inline]
fn sign_bit(w: u8, v: u64) -> bool {
    (v >> (w - 1)) & 1 == 1
}

/// Sign-extend the `w`-bit value `v` to 64 bits (as `i64`).
#[inline]
pub fn to_signed(w: u8, v: u64) -> i64 {
    let shift = 64 - w as u32;
    ((v << shift) as i64) >> shift
}

/// Metadata about a declared symbolic variable.
#[derive(Clone, Debug)]
pub struct VarInfo {
    /// Human-readable name, used in test-case reports.
    pub name: String,
    /// Width in bits.
    pub width: u8,
}

/// Arena of hash-consed expressions plus the variable table.
///
/// One pool is shared by the whole engine (solver, executor, Chef layer);
/// forked states only carry `ExprId`s, never nodes.
///
/// # Examples
///
/// ```
/// use chef_solver::{ExprPool, BinOp};
/// let mut p = ExprPool::new();
/// let x = p.fresh_var("x", 8);
/// let three = p.constant(8, 3);
/// let e = p.bin(BinOp::Mul, x, three);
/// assert_eq!(p.width(e), 8);
/// // constants fold: 3 * 4 becomes a constant node
/// let four = p.constant(8, 4);
/// let c = p.bin(BinOp::Mul, three, four);
/// assert_eq!(p.as_const(c), Some(12));
/// ```
#[derive(Debug, Default)]
pub struct ExprPool {
    nodes: Vec<Node>,
    widths: Vec<u8>,
    intern: HashMap<Node, ExprId>,
    vars: Vec<VarInfo>,
}

impl ExprPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of interned nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the pool holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node behind `id`.
    pub fn node(&self, id: ExprId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// The id of the `i`-th interned node, in creation order.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn id_at(&self, i: usize) -> ExprId {
        assert!(i < self.nodes.len(), "node index out of range");
        ExprId(i as u32)
    }

    /// Width in bits of the expression.
    pub fn width(&self, id: ExprId) -> u8 {
        self.widths[id.0 as usize]
    }

    /// All declared variables, indexed by [`VarId`].
    pub fn vars(&self) -> &[VarInfo] {
        &self.vars
    }

    /// Declares a fresh symbolic variable and returns an expression for it.
    pub fn fresh_var(&mut self, name: impl Into<String>, width: u8) -> ExprId {
        let var = VarId(self.vars.len() as u32);
        self.vars.push(VarInfo {
            name: name.into(),
            width,
        });
        self.intern_node(Node::Var { width, var }, width)
    }

    /// The expression for an already-declared variable.
    ///
    /// # Panics
    ///
    /// Panics if `var` was not declared in this pool.
    pub fn var_expr(&mut self, var: VarId) -> ExprId {
        let width = self.vars[var.0 as usize].width;
        self.intern_node(Node::Var { width, var }, width)
    }

    /// The [`VarId`] of a variable expression, if it is one.
    pub fn as_var(&self, id: ExprId) -> Option<VarId> {
        match self.node(id) {
            Node::Var { var, .. } => Some(*var),
            _ => None,
        }
    }

    /// Interns a constant of the given width.
    pub fn constant(&mut self, width: u8, bits: u64) -> ExprId {
        let bits = bits & mask(width);
        self.intern_node(Node::Const { width, bits }, width)
    }

    /// Width-1 true constant.
    pub fn true_(&mut self) -> ExprId {
        self.constant(1, 1)
    }

    /// Width-1 false constant.
    pub fn false_(&mut self) -> ExprId {
        self.constant(1, 0)
    }

    /// The constant value of `id`, if it is a constant node.
    pub fn as_const(&self, id: ExprId) -> Option<u64> {
        match self.node(id) {
            Node::Const { bits, .. } => Some(*bits),
            _ => None,
        }
    }

    /// Whether the expression is a constant node.
    pub fn is_const(&self, id: ExprId) -> bool {
        self.as_const(id).is_some()
    }

    fn intern_node(&mut self, node: Node, width: u8) -> ExprId {
        if let Some(&id) = self.intern.get(&node) {
            return id;
        }
        let id = ExprId(self.nodes.len() as u32);
        self.nodes.push(node.clone());
        self.widths.push(width);
        self.intern.insert(node, id);
        id
    }

    /// Bitwise complement.
    pub fn not(&mut self, a: ExprId) -> ExprId {
        let w = self.width(a);
        if let Some(v) = self.as_const(a) {
            return self.constant(w, !v);
        }
        if let Node::Not { a: inner } = *self.node(a) {
            return inner;
        }
        self.intern_node(Node::Not { a }, w)
    }

    /// Boolean negation of a width-1 expression (same as [`Self::not`]).
    pub fn bool_not(&mut self, a: ExprId) -> ExprId {
        debug_assert_eq!(self.width(a), 1);
        self.not(a)
    }

    /// Builds a binary operation, folding constants and applying local
    /// algebraic simplifications.
    ///
    /// # Panics
    ///
    /// Panics if the operand widths differ.
    pub fn bin(&mut self, op: BinOp, mut a: ExprId, mut b: ExprId) -> ExprId {
        let w = self.width(a);
        assert_eq!(
            w,
            self.width(b),
            "operand width mismatch in {:?}: {:?} vs {:?}",
            op,
            a,
            b
        );
        let rw = if op.is_predicate() { 1 } else { w };
        // Canonical operand order for commutative ops improves consing.
        if op.is_commutative() && a.0 > b.0 {
            std::mem::swap(&mut a, &mut b);
        }
        if let (Some(ca), Some(cb)) = (self.as_const(a), self.as_const(b)) {
            let v = eval_bin(op, w, ca, cb);
            return self.constant(rw, v);
        }
        if let Some(id) = self.simplify_bin(op, w, a, b) {
            return id;
        }
        self.intern_node(Node::Bin { op, a, b }, rw)
    }

    fn simplify_bin(&mut self, op: BinOp, w: u8, a: ExprId, b: ExprId) -> Option<ExprId> {
        let ca = self.as_const(a);
        let cb = self.as_const(b);
        let all = mask(w);
        match op {
            BinOp::Add => {
                if ca == Some(0) {
                    return Some(b);
                }
                if cb == Some(0) {
                    return Some(a);
                }
            }
            BinOp::Sub => {
                if cb == Some(0) {
                    return Some(a);
                }
                if a == b {
                    return Some(self.constant(w, 0));
                }
            }
            BinOp::Mul => {
                if ca == Some(0) || cb == Some(0) {
                    return Some(self.constant(w, 0));
                }
                if ca == Some(1) {
                    return Some(b);
                }
                if cb == Some(1) {
                    return Some(a);
                }
            }
            BinOp::And => {
                if ca == Some(0) || cb == Some(0) {
                    return Some(self.constant(w, 0));
                }
                if ca == Some(all) {
                    return Some(b);
                }
                if cb == Some(all) {
                    return Some(a);
                }
                if a == b {
                    return Some(a);
                }
            }
            BinOp::Or => {
                if ca == Some(all) || cb == Some(all) {
                    return Some(self.constant(w, all));
                }
                if ca == Some(0) {
                    return Some(b);
                }
                if cb == Some(0) {
                    return Some(a);
                }
                if a == b {
                    return Some(a);
                }
            }
            BinOp::Xor => {
                if ca == Some(0) {
                    return Some(b);
                }
                if cb == Some(0) {
                    return Some(a);
                }
                if a == b {
                    return Some(self.constant(w, 0));
                }
            }
            BinOp::Shl | BinOp::LShr | BinOp::AShr => {
                if cb == Some(0) {
                    return Some(a);
                }
                if ca == Some(0) {
                    return Some(self.constant(w, 0));
                }
            }
            BinOp::Eq => {
                if a == b {
                    return Some(self.true_());
                }
                // eq(x, c) where x = ite(p, c1, c2) with distinct constants;
                // operands may sit on either side after canonicalization.
                for (cv, ite_side) in [(cb, a), (ca, b)] {
                    if let (Some(c), Node::Ite { cond, t, f }) = (cv, self.node(ite_side).clone()) {
                        if let (Some(ct), Some(cf)) = (self.as_const(t), self.as_const(f)) {
                            if ct == c && cf != c {
                                return Some(cond);
                            }
                            if cf == c && ct != c {
                                return Some(self.not(cond));
                            }
                            if ct != c && cf != c {
                                return Some(self.false_());
                            }
                        }
                    }
                }
                // Boolean equality against constants.
                if w == 1 {
                    if cb == Some(1) {
                        return Some(a);
                    }
                    if cb == Some(0) {
                        return Some(self.not(a));
                    }
                    if ca == Some(1) {
                        return Some(b);
                    }
                    if ca == Some(0) {
                        return Some(self.not(b));
                    }
                }
            }
            BinOp::Ult => {
                if a == b || cb == Some(0) {
                    return Some(self.false_());
                }
                if ca == Some(all) {
                    return Some(self.false_());
                }
            }
            BinOp::Ule => {
                if a == b || ca == Some(0) {
                    return Some(self.true_());
                }
                if cb == Some(all) {
                    return Some(self.true_());
                }
            }
            BinOp::Slt if a == b => {
                return Some(self.false_());
            }
            BinOp::Sle if a == b => {
                return Some(self.true_());
            }
            _ => {}
        }
        None
    }

    /// If-then-else over a width-1 condition.
    ///
    /// # Panics
    ///
    /// Panics if `cond` is not width 1 or the arm widths differ.
    pub fn ite(&mut self, cond: ExprId, t: ExprId, f: ExprId) -> ExprId {
        assert_eq!(self.width(cond), 1, "ite condition must have width 1");
        let w = self.width(t);
        assert_eq!(w, self.width(f), "ite arm width mismatch");
        if let Some(c) = self.as_const(cond) {
            return if c == 1 { t } else { f };
        }
        if t == f {
            return t;
        }
        // ite(c, 1, 0) == c for booleans
        if w == 1 {
            if self.as_const(t) == Some(1) && self.as_const(f) == Some(0) {
                return cond;
            }
            if self.as_const(t) == Some(0) && self.as_const(f) == Some(1) {
                return self.not(cond);
            }
        }
        self.intern_node(Node::Ite { cond, t, f }, w)
    }

    /// Bit slice `[hi:lo]`, inclusive.
    ///
    /// # Panics
    ///
    /// Panics if `hi < lo` or `hi` exceeds the operand width.
    pub fn extract(&mut self, hi: u8, lo: u8, a: ExprId) -> ExprId {
        let w = self.width(a);
        assert!(
            hi >= lo && hi < w,
            "invalid extract [{hi}:{lo}] of width {w}"
        );
        let rw = hi - lo + 1;
        if rw == w {
            return a;
        }
        if let Some(v) = self.as_const(a) {
            return self.constant(rw, v >> lo);
        }
        // extract of concat: resolve into the matching side when aligned
        if let Node::Concat {
            a: hi_part,
            b: lo_part,
        } = *self.node(a)
        {
            let lw = self.width(lo_part);
            if hi < lw {
                return self.extract(hi, lo, lo_part);
            }
            if lo >= lw {
                return self.extract(hi - lw, lo - lw, hi_part);
            }
        }
        // extract of extract composes
        if let Node::Extract {
            lo: ilo, a: inner, ..
        } = *self.node(a)
        {
            return self.extract(hi + ilo, lo + ilo, inner);
        }
        // extract of zext: within the original width it is an extract of the
        // inner value; entirely within the zero padding it is zero.
        if let Node::Ext {
            signed: false,
            a: inner,
            ..
        } = *self.node(a)
        {
            let iw = self.width(inner);
            if hi < iw {
                return self.extract(hi, lo, inner);
            }
            if lo >= iw {
                return self.constant(rw, 0);
            }
        }
        self.intern_node(Node::Extract { hi, lo, a }, rw)
    }

    /// Zero-extension to `width` (identity if already that width).
    ///
    /// # Panics
    ///
    /// Panics if `width` is smaller than the operand width.
    pub fn zext(&mut self, width: u8, a: ExprId) -> ExprId {
        let w = self.width(a);
        assert!(width >= w, "zext target {width} below operand width {w}");
        if width == w {
            return a;
        }
        if let Some(v) = self.as_const(a) {
            return self.constant(width, v);
        }
        self.intern_node(
            Node::Ext {
                signed: false,
                width,
                a,
            },
            width,
        )
    }

    /// Sign-extension to `width` (identity if already that width).
    ///
    /// # Panics
    ///
    /// Panics if `width` is smaller than the operand width.
    pub fn sext(&mut self, width: u8, a: ExprId) -> ExprId {
        let w = self.width(a);
        assert!(width >= w, "sext target {width} below operand width {w}");
        if width == w {
            return a;
        }
        if let Some(v) = self.as_const(a) {
            return self.constant(width, to_signed(w, v) as u64);
        }
        self.intern_node(
            Node::Ext {
                signed: true,
                width,
                a,
            },
            width,
        )
    }

    /// Concatenation with `a` in the high bits.
    ///
    /// # Panics
    ///
    /// Panics if the combined width exceeds 64 bits.
    pub fn concat(&mut self, a: ExprId, b: ExprId) -> ExprId {
        let (wa, wb) = (self.width(a), self.width(b));
        let w = wa.checked_add(wb).expect("concat width overflow");
        assert!(w <= 64, "concat width {w} exceeds 64");
        if let (Some(va), Some(vb)) = (self.as_const(a), self.as_const(b)) {
            return self.constant(w, (va << wb) | vb);
        }
        // concat(0, b) == zext(b)
        if self.as_const(a) == Some(0) {
            return self.zext(w, b);
        }
        // Reassemble adjacent extracts of the same source.
        if let (
            Node::Extract {
                hi: ah,
                lo: al,
                a: src_a,
            },
            Node::Extract {
                hi: bh,
                lo: bl,
                a: src_b,
            },
        ) = (self.node(a).clone(), self.node(b).clone())
        {
            if src_a == src_b && al == bh + 1 {
                return self.extract(ah, bl, src_a);
            }
        }
        self.intern_node(Node::Concat { a, b }, w)
    }

    /// Convenience: `a == b` as width-1.
    pub fn eq(&mut self, a: ExprId, b: ExprId) -> ExprId {
        self.bin(BinOp::Eq, a, b)
    }

    /// Convenience: `a != b` as width-1.
    pub fn ne(&mut self, a: ExprId, b: ExprId) -> ExprId {
        let e = self.eq(a, b);
        self.not(e)
    }

    /// Logical AND of width-1 expressions.
    pub fn and1(&mut self, a: ExprId, b: ExprId) -> ExprId {
        self.bin(BinOp::And, a, b)
    }

    /// Logical OR of width-1 expressions.
    pub fn or1(&mut self, a: ExprId, b: ExprId) -> ExprId {
        self.bin(BinOp::Or, a, b)
    }

    /// Expression is non-zero, as width-1.
    pub fn is_nonzero(&mut self, a: ExprId) -> ExprId {
        let w = self.width(a);
        let zero = self.constant(w, 0);
        self.ne(a, zero)
    }

    /// Expression is zero, as width-1.
    pub fn is_zero(&mut self, a: ExprId) -> ExprId {
        let w = self.width(a);
        let zero = self.constant(w, 0);
        self.eq(a, zero)
    }

    /// Evaluates the expression under a variable assignment.
    ///
    /// `lookup(var)` returns the value for each [`VarId`]; results are
    /// truncated to the variable width. This is the reference semantics the
    /// bit-blaster is tested against.
    pub fn eval(&self, id: ExprId, lookup: &impl Fn(VarId) -> u64) -> u64 {
        let mut memo: HashMap<ExprId, u64> = HashMap::new();
        self.eval_memo(id, lookup, &mut memo)
    }

    /// Evaluates a conjunction of width-1 assertions under one shared memo,
    /// short-circuiting on the first false one. Path-condition assertions
    /// share most of their sub-DAG, so one memo across the conjunction is
    /// substantially cheaper than per-assertion evaluation.
    pub fn eval_conjunction(&self, ids: &[ExprId], lookup: &impl Fn(VarId) -> u64) -> bool {
        let mut memo: HashMap<ExprId, u64> = HashMap::new();
        ids.iter()
            .all(|&id| self.eval_memo(id, lookup, &mut memo) == 1)
    }

    fn eval_memo(
        &self,
        id: ExprId,
        lookup: &impl Fn(VarId) -> u64,
        memo: &mut HashMap<ExprId, u64>,
    ) -> u64 {
        // Iterative post-order evaluation (explicit worklist) with
        // memoization: path conditions grow linearly with executed branches,
        // so recursing here would overflow the stack during
        // `Model::satisfies` on the deep expression chains long guest loops
        // produce. Nodes are visited by reference, never cloned.
        let mut stack = vec![(id, false)];
        while let Some((cur, ready)) = stack.pop() {
            if memo.contains_key(&cur) {
                continue;
            }
            if !ready {
                stack.push((cur, true));
                match self.node(cur) {
                    Node::Const { .. } | Node::Var { .. } => {}
                    Node::Not { a } | Node::Extract { a, .. } | Node::Ext { a, .. } => {
                        stack.push((*a, false));
                    }
                    Node::Bin { a, b, .. } | Node::Concat { a, b } => {
                        stack.push((*a, false));
                        stack.push((*b, false));
                    }
                    Node::Ite { cond, t, f } => {
                        stack.push((*cond, false));
                        stack.push((*t, false));
                        stack.push((*f, false));
                    }
                }
                continue;
            }
            let v = match self.node(cur) {
                Node::Const { bits, .. } => *bits,
                Node::Var { width, var } => lookup(*var) & mask(*width),
                Node::Not { a } => !memo[a] & mask(self.width(cur)),
                Node::Bin { op, a, b } => eval_bin(*op, self.width(*a), memo[a], memo[b]),
                Node::Ite { cond, t, f } => {
                    if memo[cond] == 1 {
                        memo[t]
                    } else {
                        memo[f]
                    }
                }
                Node::Extract { hi, lo, a } => (memo[a] >> lo) & mask(hi - lo + 1),
                Node::Ext { signed, width, a } => {
                    let iw = self.width(*a);
                    let v = memo[a];
                    if *signed {
                        (to_signed(iw, v) as u64) & mask(*width)
                    } else {
                        v
                    }
                }
                Node::Concat { a, b } => {
                    let wb = self.width(*b);
                    ((memo[a] << wb) | memo[b]) & mask(self.width(cur))
                }
            };
            memo.insert(cur, v);
        }
        memo[&id]
    }

    /// Collects the set of variables an expression depends on.
    pub fn collect_vars(&self, id: ExprId, out: &mut Vec<VarId>) {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![id];
        while let Some(cur) = stack.pop() {
            if seen[cur.0 as usize] {
                continue;
            }
            seen[cur.0 as usize] = true;
            match self.node(cur) {
                Node::Const { .. } => {}
                Node::Var { var, .. } => out.push(*var),
                Node::Not { a } | Node::Extract { a, .. } | Node::Ext { a, .. } => stack.push(*a),
                Node::Bin { a, b, .. } | Node::Concat { a, b } => {
                    stack.push(*a);
                    stack.push(*b);
                }
                Node::Ite { cond, t, f } => {
                    stack.push(*cond);
                    stack.push(*t);
                    stack.push(*f);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
    }
}

/// Concrete semantics of [`BinOp`] on `w`-bit values.
pub fn eval_bin(op: BinOp, w: u8, a: u64, b: u64) -> u64 {
    let m = mask(w);
    let (a, b) = (a & m, b & m);
    match op {
        BinOp::Add => a.wrapping_add(b) & m,
        BinOp::Sub => a.wrapping_sub(b) & m,
        BinOp::Mul => a.wrapping_mul(b) & m,
        BinOp::UDiv => a.checked_div(b).map_or(m, |q| q & m),
        BinOp::URem => {
            if b == 0 {
                a
            } else {
                (a % b) & m
            }
        }
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => {
            if b >= w as u64 {
                0
            } else {
                (a << b) & m
            }
        }
        BinOp::LShr => {
            if b >= w as u64 {
                0
            } else {
                a >> b
            }
        }
        BinOp::AShr => {
            let s = to_signed(w, a);
            if b >= w as u64 {
                if s < 0 {
                    m
                } else {
                    0
                }
            } else {
                ((s >> b) as u64) & m
            }
        }
        BinOp::Eq => (a == b) as u64,
        BinOp::Ult => (a < b) as u64,
        BinOp::Slt => (to_signed(w, a) < to_signed(w, b)) as u64,
        BinOp::Ule => (a <= b) as u64,
        BinOp::Sle => (to_signed(w, a) <= to_signed(w, b)) as u64,
    }
}

#[allow(unused)]
fn _sign_bit_used(w: u8, v: u64) -> bool {
    sign_bit(w, v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_fold_and_intern() {
        let mut p = ExprPool::new();
        let a = p.constant(8, 300); // truncated to 44
        assert_eq!(p.as_const(a), Some(44));
        let b = p.constant(8, 44);
        assert_eq!(a, b, "equal constants intern to the same id");
    }

    #[test]
    fn add_folds() {
        let mut p = ExprPool::new();
        let a = p.constant(8, 200);
        let b = p.constant(8, 100);
        let c = p.bin(BinOp::Add, a, b);
        assert_eq!(p.as_const(c), Some((200u64 + 100) & 0xff));
    }

    #[test]
    fn identity_simplifications() {
        let mut p = ExprPool::new();
        let x = p.fresh_var("x", 32);
        let zero = p.constant(32, 0);
        let one = p.constant(32, 1);
        assert_eq!(p.bin(BinOp::Add, x, zero), x);
        assert_eq!(p.bin(BinOp::Mul, x, one), x);
        assert_eq!(p.bin(BinOp::Mul, x, zero), zero);
        assert_eq!(p.bin(BinOp::Xor, x, x), zero);
        let t = p.bin(BinOp::Eq, x, x);
        assert_eq!(p.as_const(t), Some(1));
    }

    #[test]
    fn double_not_cancels() {
        let mut p = ExprPool::new();
        let x = p.fresh_var("x", 16);
        let n = p.not(x);
        assert_eq!(p.not(n), x);
    }

    #[test]
    fn ite_const_cond() {
        let mut p = ExprPool::new();
        let x = p.fresh_var("x", 8);
        let y = p.fresh_var("y", 8);
        let t = p.true_();
        assert_eq!(p.ite(t, x, y), x);
        let f = p.false_();
        assert_eq!(p.ite(f, x, y), y);
        let c = p.fresh_var("c", 8);
        let cond = p.is_nonzero(c);
        assert_eq!(p.ite(cond, x, x), x);
    }

    #[test]
    fn extract_of_concat_resolves() {
        let mut p = ExprPool::new();
        let hi = p.fresh_var("hi", 8);
        let lo = p.fresh_var("lo", 8);
        let c = p.concat(hi, lo);
        assert_eq!(p.extract(7, 0, c), lo);
        assert_eq!(p.extract(15, 8, c), hi);
    }

    #[test]
    fn concat_of_adjacent_extracts_reassembles() {
        let mut p = ExprPool::new();
        let x = p.fresh_var("x", 32);
        let hi = p.extract(15, 8, x);
        let lo = p.extract(7, 0, x);
        let c = p.concat(hi, lo);
        assert_eq!(c, p.extract(15, 0, x));
    }

    #[test]
    fn eval_matches_semantics() {
        let mut p = ExprPool::new();
        let x = p.fresh_var("x", 8);
        let three = p.constant(8, 3);
        let e = p.bin(BinOp::Mul, x, three);
        let ten = p.constant(8, 10);
        let cmp = p.bin(BinOp::Ult, ten, e);
        let v = p.eval(cmp, &|_| 5);
        assert_eq!(v, 1, "10 < 15");
        let v = p.eval(cmp, &|_| 3);
        assert_eq!(v, 0, "10 < 9 is false");
    }

    #[test]
    fn eq_of_ite_with_const_arms() {
        let mut p = ExprPool::new();
        let c = p.fresh_var("c", 1);
        let a = p.constant(8, 5);
        let b = p.constant(8, 9);
        let ite = p.ite(c, a, b);
        assert_eq!(p.eq(ite, a), c);
        let nc = p.eq(ite, b);
        assert_eq!(nc, p.not(c));
        let other = p.constant(8, 77);
        let e = p.eq(ite, other);
        assert_eq!(p.as_const(e), Some(0));
    }

    #[test]
    fn shift_semantics_at_bounds() {
        assert_eq!(eval_bin(BinOp::Shl, 8, 1, 8), 0);
        assert_eq!(eval_bin(BinOp::LShr, 8, 0x80, 8), 0);
        assert_eq!(eval_bin(BinOp::AShr, 8, 0x80, 8), 0xff);
        assert_eq!(eval_bin(BinOp::AShr, 8, 0x40, 8), 0);
        assert_eq!(eval_bin(BinOp::UDiv, 8, 7, 0), 0xff);
        assert_eq!(eval_bin(BinOp::URem, 8, 7, 0), 7);
    }

    #[test]
    fn eval_survives_very_deep_chains() {
        // A 200k-deep alternating add/xor chain: recursion would overflow
        // the default thread stack; the worklist evaluator must not.
        let mut p = ExprPool::new();
        let x = p.fresh_var("x", 64);
        let one = p.constant(64, 1);
        let mut e = x;
        for i in 0..200_000u64 {
            e = if i % 2 == 0 {
                p.bin(BinOp::Add, e, one)
            } else {
                p.bin(BinOp::Xor, e, x)
            };
        }
        // Just computing it without a stack overflow is the property; also
        // sanity-check against a direct fold.
        let got = p.eval(e, &|_| 3);
        let mut want = 3u64;
        for i in 0..200_000u64 {
            want = if i % 2 == 0 {
                want.wrapping_add(1)
            } else {
                want ^ 3
            };
        }
        assert_eq!(got, want);
    }

    #[test]
    fn collect_vars_dedups() {
        let mut p = ExprPool::new();
        let x = p.fresh_var("x", 8);
        let y = p.fresh_var("y", 8);
        let s = p.bin(BinOp::Add, x, y);
        let s2 = p.bin(BinOp::Add, s, x);
        let mut vars = Vec::new();
        p.collect_vars(s2, &mut vars);
        assert_eq!(vars, vec![VarId(0), VarId(1)]);
    }
}
