//! # chef-solver — the constraint-solving substrate
//!
//! Bitvector (QF_BV) constraint solving for the Chef reproduction, standing
//! in for STP in the paper's stack: hash-consed expression DAGs with eager
//! constant folding ([`ExprPool`]), memoizing Tseitin bit-blasting
//! ([`bitblast::BitBlaster`]), an incremental CDCL SAT backend
//! ([`sat::SatSolver`], with assumption-based solving and learned-clause
//! deletion), and a caching facade ([`Solver`]) that answers the queries
//! symbolic execution issues: branch feasibility, test-case models,
//! `upper_bound` maximization, and bounded value enumeration for symbolic
//! pointers. The facade keeps one persistent SAT instance per solver
//! lifetime: assertions are bit-blasted once, guarded by activation
//! literals, partitioned into independent components by shared variables,
//! and toggled per query via assumptions.
//!
//! # Examples
//!
//! Solve `3·x > 10` (the running example from §2.1 of the paper):
//!
//! ```
//! use chef_solver::{ExprPool, Solver, BinOp, SatResult};
//!
//! let mut pool = ExprPool::new();
//! let mut solver = Solver::new();
//! let x = pool.fresh_var("x", 32);
//! let three = pool.constant(32, 3);
//! let ten = pool.constant(32, 10);
//! let product = pool.bin(BinOp::Mul, x, three);
//! let cond = pool.bin(BinOp::Ult, ten, product);
//!
//! match solver.check(&pool, &[cond]) {
//!     SatResult::Sat(model) => {
//!         let v = model.eval(&pool, x);
//!         assert!(3 * v > 10);
//!     }
//!     _ => unreachable!("3x > 10 has solutions"),
//! }
//! ```

pub mod bitblast;
pub mod expr;
pub mod sat;
pub mod solver;

pub use expr::{eval_bin, mask, to_signed, BinOp, ExprId, ExprPool, Node, VarId, VarInfo};
pub use solver::{Model, SatResult, Solver, SolverStats};
