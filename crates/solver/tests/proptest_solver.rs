//! Property-based tests for the solver substrate: random expressions must
//! evaluate identically under (a) the concrete evaluator, (b) constant
//! folding, and (c) the bit-blasted SAT encoding.

use proptest::prelude::*;

use chef_solver::{eval_bin, BinOp, ExprId, ExprPool, SatResult, Solver};

const OPS: [BinOp; 16] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::UDiv,
    BinOp::URem,
    BinOp::And,
    BinOp::Or,
    BinOp::Xor,
    BinOp::Shl,
    BinOp::LShr,
    BinOp::AShr,
    BinOp::Eq,
    BinOp::Ult,
    BinOp::Slt,
    BinOp::Ule,
    BinOp::Sle,
];

/// A little expression-recipe language so proptest can shrink nicely.
#[derive(Clone, Debug)]
enum Recipe {
    Var(u8),
    Const(u64),
    Bin(usize, Box<Recipe>, Box<Recipe>),
    Not(Box<Recipe>),
    Ite(Box<Recipe>, Box<Recipe>, Box<Recipe>),
    Ext(bool, Box<Recipe>),
    Extract(Box<Recipe>),
}

fn recipe() -> impl Strategy<Value = Recipe> {
    let leaf = prop_oneof![
        (0u8..3).prop_map(Recipe::Var),
        any::<u64>().prop_map(Recipe::Const),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (0..OPS.len(), inner.clone(), inner.clone()).prop_map(|(o, a, b)| Recipe::Bin(
                o,
                Box::new(a),
                Box::new(b)
            )),
            inner.clone().prop_map(|a| Recipe::Not(Box::new(a))),
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(c, t, f)| { Recipe::Ite(Box::new(c), Box::new(t), Box::new(f)) }),
            (any::<bool>(), inner.clone()).prop_map(|(s, a)| Recipe::Ext(s, Box::new(a))),
            inner.prop_map(|a| Recipe::Extract(Box::new(a))),
        ]
    })
}

const W: u8 = 8;

/// Builds the recipe in a pool (all intermediate values at width 8).
fn build(pool: &mut ExprPool, r: &Recipe, vars: &[ExprId]) -> ExprId {
    match r {
        Recipe::Var(i) => vars[(*i as usize) % vars.len()],
        Recipe::Const(v) => pool.constant(W, *v),
        Recipe::Bin(o, a, b) => {
            let ea = build(pool, a, vars);
            let eb = build(pool, b, vars);
            let op = OPS[*o % OPS.len()];
            let r = pool.bin(op, ea, eb);
            if op.is_predicate() {
                pool.zext(W, r)
            } else {
                r
            }
        }
        Recipe::Not(a) => {
            let ea = build(pool, a, vars);
            pool.not(ea)
        }
        Recipe::Ite(c, t, f) => {
            let ec = build(pool, c, vars);
            let cond = pool.is_nonzero(ec);
            let et = build(pool, t, vars);
            let ef = build(pool, f, vars);
            pool.ite(cond, et, ef)
        }
        Recipe::Ext(signed, a) => {
            let ea = build(pool, a, vars);
            let wide = if *signed {
                pool.sext(16, ea)
            } else {
                pool.zext(16, ea)
            };
            pool.extract(7, 0, wide)
        }
        Recipe::Extract(a) => {
            let ea = build(pool, a, vars);
            let hi = pool.extract(7, 4, ea);
            let lo = pool.extract(3, 0, ea);
            pool.concat(hi, lo)
        }
    }
}

/// Direct reference semantics of the recipe.
fn reference(r: &Recipe, vals: &[u64]) -> u64 {
    let m = 0xffu64;
    match r {
        Recipe::Var(i) => vals[(*i as usize) % vals.len()] & m,
        Recipe::Const(v) => v & m,
        Recipe::Bin(o, a, b) => {
            let op = OPS[*o % OPS.len()];
            eval_bin(op, W, reference(a, vals), reference(b, vals))
        }
        Recipe::Not(a) => !reference(a, vals) & m,
        Recipe::Ite(c, t, f) => {
            if reference(c, vals) != 0 {
                reference(t, vals)
            } else {
                reference(f, vals)
            }
        }
        Recipe::Ext(signed, a) => {
            let v = reference(a, vals);
            if *signed {
                // sext to 16 then truncate back to 8 is the identity
                v
            } else {
                v
            }
        }
        Recipe::Extract(a) => reference(a, vals), // swap-halves twice? no: hi:lo order preserved
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Folding + simplification must match direct evaluation.
    #[test]
    fn eval_matches_reference(r in recipe(), v0 in any::<u8>(), v1 in any::<u8>(), v2 in any::<u8>()) {
        let mut pool = ExprPool::new();
        let vars = [
            pool.fresh_var("a", W),
            pool.fresh_var("b", W),
            pool.fresh_var("c", W),
        ];
        let e = build(&mut pool, &r, &vars);
        let vals = [v0 as u64, v1 as u64, v2 as u64];
        let got = pool.eval(e, &|v| vals[v.0 as usize]);
        let want = reference(&r, &vals);
        prop_assert_eq!(got, want);
    }

    /// The bit-blasted encoding must admit exactly the values the evaluator
    /// computes: constraining `expr == eval(expr, vals)` together with the
    /// variable assignments must be SAT.
    #[test]
    fn bitblast_agrees_with_eval(r in recipe(), v0 in any::<u8>(), v1 in any::<u8>(), v2 in any::<u8>()) {
        let mut pool = ExprPool::new();
        let vars = [
            pool.fresh_var("a", W),
            pool.fresh_var("b", W),
            pool.fresh_var("c", W),
        ];
        let e = build(&mut pool, &r, &vars);
        let vals = [v0 as u64, v1 as u64, v2 as u64];
        let want = pool.eval(e, &|v| vals[v.0 as usize]);
        let mut assertions = Vec::new();
        for (var, val) in vars.iter().zip(vals.iter()) {
            let c = pool.constant(W, *val);
            assertions.push(pool.eq(*var, c));
        }
        let cw = pool.constant(W, want);
        assertions.push(pool.eq(e, cw));
        let mut solver = Solver::new();
        prop_assert!(solver.check(&pool, &assertions).is_sat(),
            "expr must equal its evaluation under the same assignment");
        // And the opposite value must be UNSAT.
        let wrong = pool.constant(W, want ^ 1);
        let last = assertions.len() - 1;
        assertions[last] = pool.eq(e, wrong);
        prop_assert_eq!(solver.check(&pool, &assertions), SatResult::Unsat);
    }

    /// Models returned by the solver satisfy the query by construction.
    #[test]
    fn models_satisfy_queries(r in recipe()) {
        let mut pool = ExprPool::new();
        let vars = [
            pool.fresh_var("a", W),
            pool.fresh_var("b", W),
            pool.fresh_var("c", W),
        ];
        let e = build(&mut pool, &r, &vars);
        let nz = pool.is_nonzero(e);
        let mut solver = Solver::new();
        if let SatResult::Sat(model) = solver.check(&pool, &[nz]) {
            prop_assert_eq!(model.eval(&pool, nz), 1);
            prop_assert!(model.eval(&pool, e) != 0);
        }
    }

    /// `max_value` is both attainable and an upper bound.
    #[test]
    fn max_value_is_tight(bound in 1u64..=255) {
        let mut pool = ExprPool::new();
        let mut solver = Solver::new();
        let x = pool.fresh_var("x", W);
        let b = pool.constant(W, bound);
        let le = pool.bin(BinOp::Ule, x, b);
        let two = pool.constant(W, 2);
        let dbl = pool.bin(BinOp::Mul, x, two);
        let max = solver.max_value(&mut pool, dbl, &[le]).unwrap();
        // Attainable:
        let c = pool.constant(W, max);
        let attain = pool.eq(dbl, c);
        prop_assert!(solver.check(&pool, &[le, attain]).is_sat());
        // Upper bound: dbl > max must be UNSAT under the constraint.
        let gt = pool.bin(BinOp::Ult, c, dbl);
        prop_assert_eq!(solver.check(&pool, &[le, gt]), SatResult::Unsat);
    }
}
