//! Property tests for the incremental solver core: a single persistent
//! [`Solver`] answering a growing (push-style) assertion sequence must be
//! indistinguishable from a fresh solver constructed for every query.
//!
//! Satisfiability outcomes are compared exactly; models are compared
//! semantically (each side's model must satisfy the query — the literal
//! assignments may legitimately differ, since the incremental instance
//! carries learned clauses and saved phases across queries). The canonical
//! optimization entry points (`max_value`, `min_value`, `enumerate_values`)
//! have history-independent answers, so those are compared for equality.

use proptest::prelude::*;

use chef_solver::{BinOp, ExprId, ExprPool, SatResult, Solver};

const W: u8 = 8;

const ARITH: [BinOp; 6] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::And,
    BinOp::Or,
    BinOp::Xor,
];

const PREDS: [BinOp; 5] = [BinOp::Eq, BinOp::Ult, BinOp::Ule, BinOp::Slt, BinOp::Sle];

/// One randomly shaped width-8 term over three variables.
#[derive(Clone, Debug)]
enum Term {
    Var(u8),
    Const(u64),
    Bin(u8, Box<Term>, Box<Term>),
}

/// One width-1 constraint: `a <pred> b`, optionally negated.
#[derive(Clone, Debug)]
struct Constraint {
    pred: u8,
    neg: bool,
    a: Term,
    b: Term,
}

fn term() -> impl Strategy<Value = Term> {
    let leaf = prop_oneof![
        (0u8..3).prop_map(Term::Var),
        any::<u64>().prop_map(Term::Const),
    ];
    leaf.prop_recursive(2, 12, 2, |inner| {
        (0u8..ARITH.len() as u8, inner.clone(), inner)
            .prop_map(|(o, a, b)| Term::Bin(o, Box::new(a), Box::new(b)))
    })
}

fn constraint() -> impl Strategy<Value = Constraint> {
    (0u8..PREDS.len() as u8, any::<bool>(), term(), term())
        .prop_map(|(pred, neg, a, b)| Constraint { pred, neg, a, b })
}

fn build_term(pool: &mut ExprPool, t: &Term, vars: &[ExprId]) -> ExprId {
    match t {
        Term::Var(i) => vars[(*i as usize) % vars.len()],
        Term::Const(v) => pool.constant(W, *v),
        Term::Bin(o, a, b) => {
            let ea = build_term(pool, a, vars);
            let eb = build_term(pool, b, vars);
            pool.bin(ARITH[(*o as usize) % ARITH.len()], ea, eb)
        }
    }
}

fn build_constraint(pool: &mut ExprPool, c: &Constraint, vars: &[ExprId]) -> ExprId {
    let a = build_term(pool, &c.a, vars);
    let b = build_term(pool, &c.b, vars);
    let p = pool.bin(PREDS[(c.pred as usize) % PREDS.len()], a, b);
    if c.neg {
        pool.bool_not(p)
    } else {
        p
    }
}

fn kind(r: &SatResult) -> &'static str {
    match r {
        SatResult::Sat(_) => "sat",
        SatResult::Unsat => "unsat",
        SatResult::Unknown => "unknown",
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Push-style growth: after each pushed constraint, the persistent
    /// incremental solver and a fresh-per-query solver agree on
    /// satisfiability, and both models (when Sat) satisfy the query.
    #[test]
    fn incremental_matches_fresh_over_growing_paths(
        cs in proptest::collection::vec(constraint(), 1..7)
    ) {
        let mut pool = ExprPool::new();
        let vars = [
            pool.fresh_var("a", W),
            pool.fresh_var("b", W),
            pool.fresh_var("c", W),
        ];
        let mut incremental = Solver::new();
        let mut path: Vec<ExprId> = Vec::new();
        for c in &cs {
            let e = build_constraint(&mut pool, c, &vars);
            path.push(e);
            let inc = incremental.check(&pool, &path);
            let fresh = Solver::new().check(&pool, &path);
            prop_assert_eq!(
                kind(&inc), kind(&fresh),
                "incremental and fresh answers diverge on {:?}", path
            );
            if let SatResult::Sat(m) = &inc {
                prop_assert!(m.satisfies(&pool, &path), "incremental model invalid");
            }
            if let SatResult::Sat(m) = &fresh {
                prop_assert!(m.satisfies(&pool, &path), "fresh model invalid");
            }
        }
        // Shrinking back down (popping) must also be served consistently:
        // re-query every prefix against a fresh solver.
        while path.pop().is_some() {
            let inc = incremental.check(&pool, &path);
            let fresh = Solver::new().check(&pool, &path);
            prop_assert_eq!(kind(&inc), kind(&fresh));
        }
    }

    /// The optimization loops have canonical answers: the persistent
    /// instance (with all its accumulated guards and learned clauses) and a
    /// fresh solver must return identical `max_value` / `min_value` /
    /// `enumerate_values`.
    #[test]
    fn optimization_answers_are_history_independent(
        cs in proptest::collection::vec(constraint(), 1..5),
        t in term()
    ) {
        let mut pool = ExprPool::new();
        let vars = [
            pool.fresh_var("a", W),
            pool.fresh_var("b", W),
            pool.fresh_var("c", W),
        ];
        let mut incremental = Solver::new();
        let mut path: Vec<ExprId> = Vec::new();
        for c in &cs {
            let e = build_constraint(&mut pool, c, &vars);
            path.push(e);
            // Warm the incremental solver's caches with every prefix.
            let _ = incremental.check(&pool, &path);
        }
        let expr = build_term(&mut pool, &t, &vars);
        let inc_max = incremental.max_value(&mut pool, expr, &path);
        let fresh_max = Solver::new().max_value(&mut pool, expr, &path);
        prop_assert_eq!(inc_max, fresh_max, "max_value diverges");
        let inc_min = incremental.min_value(&mut pool, expr, &path);
        let fresh_min = Solver::new().min_value(&mut pool, expr, &path);
        prop_assert_eq!(inc_min, fresh_min, "min_value diverges");
        // Enumerate a slice of the value space. When either side came back
        // under the limit it enumerated the *complete* feasible set, so the
        // other side must return the same set (order is model-dependent);
        // when both hit the limit, the kept subsets may legitimately differ
        // but their size may not.
        const LIMIT: usize = 6;
        let mut inc_vals = incremental.enumerate_values(&mut pool, expr, &path, LIMIT);
        let mut fresh_vals = Solver::new().enumerate_values(&mut pool, expr, &path, LIMIT);
        inc_vals.sort_unstable();
        fresh_vals.sort_unstable();
        if inc_vals.len() < LIMIT || fresh_vals.len() < LIMIT {
            prop_assert_eq!(inc_vals, fresh_vals, "complete value sets diverge");
        } else {
            prop_assert_eq!(inc_vals.len(), fresh_vals.len());
        }
    }
}
