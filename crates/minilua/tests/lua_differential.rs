//! Differential tests for MiniLua: LIR interpretation must agree with the
//! shared reference evaluator on concrete runs, across all §4.2 builds.

use chef_lir::{run_concrete, ConcreteStatus, GuestEvent, InputMap};
use chef_minilua::parse;
use chef_minipy::pyref::{self, PyOutcome, PyVal};
use chef_minipy::{build_program, compile_module, InterpreterOptions, SymbolicTest};

fn check_agreement(src: &str, entry: &str, arg: &str) {
    let ast = parse(src).unwrap();
    let expected = pyref::run(&ast, entry, vec![PyVal::str(arg)], 10_000_000).unwrap();
    let module = compile_module(&ast).unwrap();
    for (label, opts) in InterpreterOptions::cumulative() {
        let test = SymbolicTest::new(entry).sym_str("input", arg.len());
        let prog = build_program(&module, &opts, &test).unwrap();
        let mut inputs = InputMap::new();
        inputs.insert("input".into(), arg.as_bytes().to_vec());
        let out = run_concrete(&prog, &inputs, 50_000_000);
        assert!(
            matches!(out.status, ConcreteStatus::EndedSymbolic(_)),
            "{label}: bad exit {:?}",
            out.status
        );
        let exc = out.events.iter().find_map(|e| match e {
            GuestEvent::Exception(n) => Some(n.clone()),
            _ => None,
        });
        let marker = out.events.iter().find_map(|e| match e {
            GuestEvent::Marker(a, b) => Some((*a, *b)),
            _ => None,
        });
        match &expected {
            PyOutcome::Exception(e) => {
                assert_eq!(exc.as_deref(), Some(e.as_str()), "{label}, arg {arg:?}");
            }
            PyOutcome::Value(v) => {
                assert!(exc.is_none(), "{label}, arg {arg:?}: unexpected {exc:?}");
                if let PyVal::Int(want) = v {
                    let (_, payload) = marker.expect("marker present");
                    assert_eq!(payload as i64, *want, "{label}, arg {arg:?}");
                }
            }
            PyOutcome::OutOfFuel => panic!("oracle out of fuel"),
        }
    }
}

#[test]
fn arithmetic_and_for_loops_agree() {
    let src = r#"
function f(s)
  local acc = 0
  for i = 1, #s do
    acc = acc + byte(s, i)
  end
  return acc % 1000
end
"#;
    for arg in ["", "a", "xyz", "hello!"] {
        check_agreement(src, "f", arg);
    }
}

#[test]
fn string_functions_agree() {
    let src = r#"
function f(s)
  local p = find(s, "@")
  if p == 0 then
    return -1
  end
  local head = sub(s, 1, p - 1)
  return #head * 10 + p
end
"#;
    for arg in ["ab@c", "@x", "none", ""] {
        check_agreement(src, "f", arg);
    }
}

#[test]
fn tables_agree() {
    let src = r#"
function f(s)
  local t = {}
  t["k"] = 1
  t[s] = 2
  if #s > 0 and sub(s, 1, 1) == "k" and #s == 1 then
    return t["k"] * 100
  end
  return t["k"]
end
"#;
    for arg in ["k", "q", "kk"] {
        check_agreement(src, "f", arg);
    }
}

#[test]
fn error_propagates_as_lua_error() {
    let src = r#"
function g(s)
  if #s > 2 then
    error("too long")
  end
  return #s
end

function f(s)
  return g(s) + 1
end
"#;
    for arg in ["ab", "abcd"] {
        check_agreement(src, "f", arg);
    }
}

#[test]
fn concat_and_tostring_agree() {
    let src = r#"
function f(s)
  local out = s .. "-" .. tostring(#s)
  return #out
end
"#;
    for arg in ["", "ab", "hello"] {
        check_agreement(src, "f", arg);
    }
}

#[test]
fn comparisons_and_logic_agree() {
    let src = r#"
function f(s)
  local n = #s
  if n > 1 and n <= 3 or n == 0 then
    return 1
  end
  if not (n == 4) then
    return 2
  end
  return 3
end
"#;
    for arg in ["", "a", "ab", "abc", "abcd", "abcde"] {
        check_agreement(src, "f", arg);
    }
}

#[test]
fn insert_and_list_agree() {
    let src = r#"
function f(s)
  local l = newlist()
  for i = 1, #s do
    insert(l, byte(s, i))
  end
  local total = 0
  for i = 1, #l do
    total = total + l[i - 1]
  end
  return total % 997
end
"#;
    for arg in ["", "abc"] {
        check_agreement(src, "f", arg);
    }
}
