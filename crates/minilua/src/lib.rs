//! # chef-minilua — the Lua-subset front-end (the Lua 5.2 substitute)
//!
//! MiniLua is the second target language of this Chef reproduction,
//! mirroring §5.2 of the paper: a lightweight scripting language whose
//! interpreter shares the stack-bytecode core with MiniPy (the paper's Lua
//! engine also reused Chef unchanged — only the interpreter differs).
//! Deliberate Lua-isms handled at the front-end:
//!
//! - keyword-delimited blocks (`function … end`, `if … then … end`),
//! - `..` concatenation, `~=` inequality, `#` length, numeric `for`,
//! - 1-based string functions (`sub`, `byte`, `find`) translated to the
//!   0-based runtime,
//! - `error(...)` raises `LuaError`, and the evaluated subset has no
//!   exception handling — an error terminates the script, which is why the
//!   paper reports no exception counts for Lua packages (Table 3),
//! - integers instead of floats (the paper flipped the same configuration
//!   switch in Lua 5.2).
//!
//! # Examples
//!
//! ```
//! use chef_core::{Chef, ChefConfig};
//! use chef_minilua::{compile, parse};
//! use chef_minipy::{build_program, InterpreterOptions, SymbolicTest};
//!
//! let src = "function f(s)\n  if s == \"ok\" then return 1 end\n  return 0\nend\n";
//! let module = compile(src).unwrap();
//! let test = SymbolicTest::new("f").sym_str("s", 2);
//! let prog = build_program(&module, &InterpreterOptions::all(), &test).unwrap();
//! let report = Chef::new(&prog, ChefConfig::default()).run();
//! assert!(report.tests.iter().any(|t| t.inputs["s"] == b"ok"));
//! # let _ = parse(src).unwrap();
//! ```

pub mod lexer;
pub mod parser;

pub use parser::{parse, ParseError, LUA_ERROR};

use chef_minipy::{compile_module, CompileError, CompiledModule};

/// Parses and compiles MiniLua source to the shared bytecode.
///
/// # Errors
///
/// Returns a [`CompileError`] on syntax or resolution problems.
pub fn compile(source: &str) -> Result<CompiledModule, CompileError> {
    let module = parse(source).map_err(|e| CompileError {
        line: e.line,
        message: e.message,
    })?;
    compile_module(&module)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiles_simple_function() {
        let m = compile("function f(x)\n  return x * 2\nend\n").unwrap();
        assert_eq!(m.funcs.len(), 1);
    }

    #[test]
    fn for_loop_compiles_and_runs_on_reference() {
        use chef_minipy::pyref::{run, PyOutcome, PyVal};
        let module =
            parse("function f(n)\n  local acc = 0\n  for i = 1, n do acc = acc + i end\n  return acc\nend\n")
                .unwrap();
        match run(&module, "f", vec![PyVal::Int(10)], 100_000).unwrap() {
            PyOutcome::Value(PyVal::Int(55)) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn one_based_string_functions() {
        use chef_minipy::pyref::{run, PyOutcome, PyVal};
        let module = parse(
            "function f(s)\n  local p = find(s, \"@\")\n  local head = sub(s, 1, p - 1)\n  return #head\nend\n",
        )
        .unwrap();
        // "ab@c": find -> 3, sub(s,1,2) = "ab", #head = 2
        match run(&module, "f", vec![PyVal::str("ab@c")], 100_000).unwrap() {
            PyOutcome::Value(PyVal::Int(2)) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn error_escapes_as_lua_error() {
        use chef_minipy::pyref::{run, PyOutcome};
        let module = parse("function f()\n  error(\"bad\")\nend\n").unwrap();
        match run(&module, "f", vec![], 1_000).unwrap() {
            PyOutcome::Exception(e) => assert_eq!(e, "LuaError"),
            other => panic!("{other:?}"),
        }
    }
}
