//! Lexer for MiniLua (keyword-delimited blocks, `--` comments).

use std::fmt;

/// A token with its source line.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// 1-based source line.
    pub line: u32,
    /// Kind and payload.
    pub kind: Tok,
}

/// Token kinds.
#[derive(Clone, Debug, PartialEq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal (MiniLua is configured for integers, §5.2).
    Int(i64),
    /// String literal.
    Str(String),
    /// Operator/punctuation, e.g. `".."`, `"~="`.
    Punct(&'static str),
    /// End of input.
    Eof,
}

impl Tok {
    /// Whether this token is the given keyword.
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Tok::Ident(s) if s == kw)
    }
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Int(v) => write!(f, "{v}"),
            Tok::Str(_) => write!(f, "string literal"),
            Tok::Punct(p) => write!(f, "'{p}'"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

/// A lexing error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    /// 1-based line.
    pub line: u32,
    /// Description.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

const PUNCTS: &[&str] = &[
    "==", "~=", "<=", ">=", "..", "(", ")", "[", "]", "{", "}", ",", ";", "=", "+", "-", "*", "/",
    "%", "<", ">", "#", ":", ".",
];

/// Tokenizes MiniLua source.
///
/// # Errors
///
/// Returns a [`LexError`] on malformed literals or unexpected characters.
pub fn lex(source: &str) -> Result<Vec<Token>, LexError> {
    let mut out = Vec::new();
    for (lineno, raw) in source.lines().enumerate() {
        let line = lineno as u32 + 1;
        let chars: Vec<char> = raw.chars().collect();
        let mut i = 0usize;
        while i < chars.len() {
            let c = chars[i];
            if c == ' ' || c == '\t' {
                i += 1;
                continue;
            }
            if c == '-' && i + 1 < chars.len() && chars[i + 1] == '-' {
                break; // comment to end of line
            }
            if c.is_ascii_digit() {
                let start = i;
                while i < chars.len() && chars[i].is_ascii_digit() {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                let v = text.parse::<i64>().map_err(|_| LexError {
                    line,
                    message: format!("integer {text} out of range"),
                })?;
                out.push(Token {
                    line,
                    kind: Tok::Int(v),
                });
                continue;
            }
            if c.is_ascii_alphabetic() || c == '_' {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                out.push(Token {
                    line,
                    kind: Tok::Ident(text),
                });
                continue;
            }
            if c == '"' || c == '\'' {
                let quote = c;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= chars.len() {
                        return Err(LexError {
                            line,
                            message: "unterminated string".into(),
                        });
                    }
                    let ch = chars[i];
                    if ch == quote {
                        i += 1;
                        break;
                    }
                    if ch == '\\' {
                        i += 1;
                        if i >= chars.len() {
                            return Err(LexError {
                                line,
                                message: "bad escape".into(),
                            });
                        }
                        s.push(match chars[i] {
                            'n' => '\n',
                            't' => '\t',
                            'r' => '\r',
                            '0' => '\0',
                            '\\' => '\\',
                            '\'' => '\'',
                            '"' => '"',
                            other => {
                                return Err(LexError {
                                    line,
                                    message: format!("unknown escape \\{other}"),
                                })
                            }
                        });
                        i += 1;
                        continue;
                    }
                    s.push(ch);
                    i += 1;
                }
                out.push(Token {
                    line,
                    kind: Tok::Str(s),
                });
                continue;
            }
            let rest: String = chars[i..].iter().collect();
            let mut matched = None;
            for p in PUNCTS {
                if rest.starts_with(p) {
                    matched = Some(*p);
                    break;
                }
            }
            match matched {
                Some(p) => {
                    out.push(Token {
                        line,
                        kind: Tok::Punct(p),
                    });
                    i += p.len();
                }
                None => {
                    return Err(LexError {
                        line,
                        message: format!("unexpected character '{c}'"),
                    })
                }
            }
        }
    }
    let last = source.lines().count() as u32;
    out.push(Token {
        line: last,
        kind: Tok::Eof,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        let ks = kinds("local x = 1 .. \"a\"");
        assert!(ks.contains(&Tok::Ident("local".into())));
        assert!(ks.contains(&Tok::Punct("..")));
        assert!(ks.contains(&Tok::Str("a".into())));
    }

    #[test]
    fn comments_are_skipped() {
        let ks = kinds("x = 1 -- comment\ny = 2");
        assert_eq!(ks.iter().filter(|k| matches!(k, Tok::Int(_))).count(), 2);
    }

    #[test]
    fn ne_operator() {
        let ks = kinds("a ~= b");
        assert!(ks.contains(&Tok::Punct("~=")));
    }

    #[test]
    fn length_operator() {
        let ks = kinds("#s");
        assert!(ks.contains(&Tok::Punct("#")));
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(lex("x = \"abc").is_err());
    }
}
