//! Parser for MiniLua, producing the shared AST (`chef_minipy::ast`).
//!
//! MiniLua mirrors the paper's Lua setup (§5.2): the interpreter core is
//! shared with MiniPy (both languages compile to the same stack bytecode),
//! integers replace floats, and Lua-specific surface forms are translated
//! at parse time:
//!
//! - 1-based string indexing: `sub(s, i, j)` → 0-based slice, `byte(s, i)`
//!   → `ord(s[i-1])`, `find(s, n)` → `s.find(n) + 1` (0 when absent),
//! - `..` concatenation → string `+`,
//! - `#s` → `len(s)`,
//! - numeric `for i = a, b do … end` → `while` desugaring,
//! - `error(...)` → raising the `LuaError` class (errors abort the script —
//!   Lua has no exception handling in the evaluated subset).

use std::fmt;

use chef_minipy::ast::{BinOp, Expr, ExprKind, FuncDef, Module, Stmt, StmtKind, UnOp};

use crate::lexer::{lex, LexError, Tok, Token};

/// A parse error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line.
    pub line: u32,
    /// Description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            line: e.line,
            message: e.message,
        }
    }
}

/// Exception class used for Lua `error(...)`.
pub const LUA_ERROR: &str = "LuaError";

/// Parses MiniLua source into the shared module AST.
///
/// # Errors
///
/// Returns a [`ParseError`] on the first syntax problem.
///
/// # Examples
///
/// ```
/// let m = chef_minilua::parse("function f(x)\n  return x + 1\nend\n").unwrap();
/// assert_eq!(m.funcs[0].name, "f");
/// ```
pub fn parse(source: &str) -> Result<Module, ParseError> {
    let tokens = lex(source)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        temp: 0,
    };
    p.module()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    temp: u32,
}

const KEYWORDS: &[&str] = &[
    "function", "end", "if", "then", "elseif", "else", "while", "do", "for", "return", "break",
    "local", "and", "or", "not", "true", "false", "nil", "error",
];

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].kind
    }

    fn line(&self) -> u32 {
        self.tokens[self.pos].line
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            line: self.line(),
            message: message.into(),
        })
    }

    fn eat_punct(&mut self, p: &'static str) -> bool {
        if *self.peek() == Tok::Punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &'static str) -> Result<(), ParseError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            self.err(format!("expected '{p}', found {}", self.peek()))
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            self.err(format!("expected '{kw}', found {}", self.peek()))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Tok::Ident(s) if !KEYWORDS.contains(&s.as_str()) => {
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found {other}")),
        }
    }

    fn module(&mut self) -> Result<Module, ParseError> {
        let mut funcs = Vec::new();
        while *self.peek() != Tok::Eof {
            if !self.peek().is_kw("function") {
                return self.err(format!("expected 'function', found {}", self.peek()));
            }
            funcs.push(self.funcdef()?);
        }
        Ok(Module { funcs })
    }

    fn funcdef(&mut self) -> Result<FuncDef, ParseError> {
        let line = self.line();
        self.expect_kw("function")?;
        let name = self.ident()?;
        self.expect_punct("(")?;
        let mut params = Vec::new();
        if !self.eat_punct(")") {
            loop {
                params.push(self.ident()?);
                if self.eat_punct(")") {
                    break;
                }
                self.expect_punct(",")?;
            }
        }
        let body = self.block()?;
        self.expect_kw("end")?;
        Ok(FuncDef {
            name,
            params,
            body,
            line,
        })
    }

    /// Parses statements until a block-terminating keyword.
    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        let mut stmts = Vec::new();
        loop {
            match self.peek() {
                Tok::Eof => break,
                Tok::Ident(s) if matches!(s.as_str(), "end" | "else" | "elseif") => break,
                Tok::Punct(";") => {
                    self.bump();
                }
                _ => stmts.push(self.stmt()?),
            }
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        let line = self.line();
        match self.peek().clone() {
            Tok::Ident(s) if s == "local" => {
                self.bump();
                let name = self.ident()?;
                self.expect_punct("=")?;
                let value = self.expr()?;
                Ok(Stmt {
                    line,
                    kind: StmtKind::Assign(name, value),
                })
            }
            Tok::Ident(s) if s == "if" => self.if_stmt(),
            Tok::Ident(s) if s == "while" => {
                self.bump();
                let cond = self.expr()?;
                self.expect_kw("do")?;
                let body = self.block()?;
                self.expect_kw("end")?;
                Ok(Stmt {
                    line,
                    kind: StmtKind::While(cond, body),
                })
            }
            Tok::Ident(s) if s == "for" => self.for_stmt(),
            Tok::Ident(s) if s == "return" => {
                self.bump();
                let value = match self.peek() {
                    Tok::Eof => None,
                    Tok::Ident(k) if matches!(k.as_str(), "end" | "else" | "elseif") => None,
                    _ => Some(self.expr()?),
                };
                Ok(Stmt {
                    line,
                    kind: StmtKind::Return(value),
                })
            }
            Tok::Ident(s) if s == "break" => {
                self.bump();
                Ok(Stmt {
                    line,
                    kind: StmtKind::Break,
                })
            }
            Tok::Ident(s) if s == "error" => {
                self.bump();
                self.expect_punct("(")?;
                let mut args = Vec::new();
                if !self.eat_punct(")") {
                    loop {
                        args.push(self.expr()?);
                        if self.eat_punct(")") {
                            break;
                        }
                        self.expect_punct(",")?;
                    }
                }
                Ok(Stmt {
                    line,
                    kind: StmtKind::Raise(LUA_ERROR.into(), args),
                })
            }
            _ => {
                let e = self.expr()?;
                if self.eat_punct("=") {
                    let value = self.expr()?;
                    return match e.kind {
                        ExprKind::Name(n) => Ok(Stmt {
                            line,
                            kind: StmtKind::Assign(n, value),
                        }),
                        ExprKind::Index(obj, idx) => Ok(Stmt {
                            line,
                            kind: StmtKind::IndexAssign(*obj, *idx, value),
                        }),
                        _ => self.err("invalid assignment target"),
                    };
                }
                Ok(Stmt {
                    line,
                    kind: StmtKind::Expr(e),
                })
            }
        }
    }

    fn if_stmt(&mut self) -> Result<Stmt, ParseError> {
        let line = self.line();
        self.expect_kw("if")?;
        let mut arms = Vec::new();
        let cond = self.expr()?;
        self.expect_kw("then")?;
        arms.push((cond, self.block()?));
        let mut els = Vec::new();
        loop {
            if self.eat_kw("elseif") {
                let c = self.expr()?;
                self.expect_kw("then")?;
                arms.push((c, self.block()?));
            } else if self.eat_kw("else") {
                els = self.block()?;
                self.expect_kw("end")?;
                return Ok(Stmt {
                    line,
                    kind: StmtKind::If(arms, els),
                });
            } else {
                self.expect_kw("end")?;
                return Ok(Stmt {
                    line,
                    kind: StmtKind::If(arms, els),
                });
            }
        }
    }

    /// Desugars `for i = a, b do body end` into assignment + while.
    fn for_stmt(&mut self) -> Result<Stmt, ParseError> {
        let line = self.line();
        self.expect_kw("for")?;
        let var = self.ident()?;
        self.expect_punct("=")?;
        let start = self.expr()?;
        self.expect_punct(",")?;
        let stop = self.expr()?;
        self.expect_kw("do")?;
        let mut body = self.block()?;
        self.expect_kw("end")?;
        self.temp += 1;
        let limit = format!("__limit_{}", self.temp);
        // i = start; __limit = stop; while i <= __limit: body; i += 1
        let init = Stmt {
            line,
            kind: StmtKind::Assign(var.clone(), start),
        };
        let set_limit = Stmt {
            line,
            kind: StmtKind::Assign(limit.clone(), stop),
        };
        let cond = Expr {
            line,
            kind: ExprKind::Bin(
                BinOp::Le,
                Box::new(Expr {
                    line,
                    kind: ExprKind::Name(var.clone()),
                }),
                Box::new(Expr {
                    line,
                    kind: ExprKind::Name(limit),
                }),
            ),
        };
        body.push(Stmt {
            line,
            kind: StmtKind::Assign(
                var.clone(),
                Expr {
                    line,
                    kind: ExprKind::Bin(
                        BinOp::Add,
                        Box::new(Expr {
                            line,
                            kind: ExprKind::Name(var),
                        }),
                        Box::new(Expr {
                            line,
                            kind: ExprKind::Int(1),
                        }),
                    ),
                },
            ),
        });
        let while_stmt = Stmt {
            line,
            kind: StmtKind::While(cond, body),
        };
        // Wrap the three statements in an always-true if to keep one Stmt.
        Ok(Stmt {
            line,
            kind: StmtKind::If(
                vec![(
                    Expr {
                        line,
                        kind: ExprKind::True,
                    },
                    vec![init, set_limit, while_stmt],
                )],
                vec![],
            ),
        })
    }

    // ----- expressions -----

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.and_expr()?;
        while self.peek().is_kw("or") {
            let line = self.line();
            self.bump();
            let rhs = self.and_expr()?;
            e = Expr {
                line,
                kind: ExprKind::Or(Box::new(e), Box::new(rhs)),
            };
        }
        Ok(e)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.cmp_expr()?;
        while self.peek().is_kw("and") {
            let line = self.line();
            self.bump();
            let rhs = self.cmp_expr()?;
            e = Expr {
                line,
                kind: ExprKind::And(Box::new(e), Box::new(rhs)),
            };
        }
        Ok(e)
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let e = self.concat_expr()?;
        let line = self.line();
        let op = match self.peek() {
            Tok::Punct("==") => Some(BinOp::Eq),
            Tok::Punct("~=") => Some(BinOp::Ne),
            Tok::Punct("<") => Some(BinOp::Lt),
            Tok::Punct("<=") => Some(BinOp::Le),
            Tok::Punct(">") => Some(BinOp::Gt),
            Tok::Punct(">=") => Some(BinOp::Ge),
            _ => None,
        };
        match op {
            None => Ok(e),
            Some(op) => {
                self.bump();
                let rhs = self.concat_expr()?;
                Ok(Expr {
                    line,
                    kind: ExprKind::Bin(op, Box::new(e), Box::new(rhs)),
                })
            }
        }
    }

    fn concat_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.add_expr()?;
        while *self.peek() == Tok::Punct("..") {
            let line = self.line();
            self.bump();
            let rhs = self.add_expr()?;
            // String concatenation is `+` in the shared runtime.
            e = Expr {
                line,
                kind: ExprKind::Bin(BinOp::Add, Box::new(e), Box::new(rhs)),
            };
        }
        Ok(e)
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.mul_expr()?;
        loop {
            let line = self.line();
            let op = match self.peek() {
                Tok::Punct("+") => BinOp::Add,
                Tok::Punct("-") => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            e = Expr {
                line,
                kind: ExprKind::Bin(op, Box::new(e), Box::new(rhs)),
            };
        }
        Ok(e)
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.unary_expr()?;
        loop {
            let line = self.line();
            let op = match self.peek() {
                Tok::Punct("*") => BinOp::Mul,
                Tok::Punct("/") => BinOp::Div,
                Tok::Punct("%") => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            e = Expr {
                line,
                kind: ExprKind::Bin(op, Box::new(e), Box::new(rhs)),
            };
        }
        Ok(e)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        let line = self.line();
        if self.peek().is_kw("not") {
            self.bump();
            let inner = self.unary_expr()?;
            return Ok(Expr {
                line,
                kind: ExprKind::Un(UnOp::Not, Box::new(inner)),
            });
        }
        if *self.peek() == Tok::Punct("-") {
            self.bump();
            let inner = self.unary_expr()?;
            return Ok(Expr {
                line,
                kind: ExprKind::Un(UnOp::Neg, Box::new(inner)),
            });
        }
        if *self.peek() == Tok::Punct("#") {
            self.bump();
            let inner = self.unary_expr()?;
            return Ok(Expr {
                line,
                kind: ExprKind::Call("len".into(), vec![inner]),
            });
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.atom()?;
        loop {
            let line = self.line();
            match self.peek() {
                Tok::Punct("(") => {
                    let name = match &e.kind {
                        ExprKind::Name(n) => n.clone(),
                        _ => return self.err("only named functions can be called"),
                    };
                    self.bump();
                    let mut args = Vec::new();
                    if !self.eat_punct(")") {
                        loop {
                            args.push(self.expr()?);
                            if self.eat_punct(")") {
                                break;
                            }
                            self.expect_punct(",")?;
                        }
                    }
                    e = self.lower_call(line, &name, args)?;
                }
                Tok::Punct("[") => {
                    self.bump();
                    let idx = self.expr()?;
                    self.expect_punct("]")?;
                    e = Expr {
                        line,
                        kind: ExprKind::Index(Box::new(e), Box::new(idx)),
                    };
                }
                _ => break,
            }
        }
        Ok(e)
    }

    /// Translates MiniLua's standard-library call surface into the shared
    /// AST (1-based string functions become 0-based operations).
    fn lower_call(
        &mut self,
        line: u32,
        name: &str,
        mut args: Vec<Expr>,
    ) -> Result<Expr, ParseError> {
        let arity = |n: usize, args: &[Expr]| -> Result<(), ParseError> {
            if args.len() != n {
                Err(ParseError {
                    line,
                    message: format!("{name} expects {n} args, got {}", args.len()),
                })
            } else {
                Ok(())
            }
        };
        let int1 = || Expr {
            line,
            kind: ExprKind::Int(1),
        };
        let minus1 = |e: Expr| Expr {
            line,
            kind: ExprKind::Bin(BinOp::Sub, Box::new(e), Box::new(int1())),
        };
        Ok(match name {
            // find(s, n) -> s.find(n) + 1 (0 when absent)
            "find" => {
                arity(2, &args)?;
                let n = args.pop().unwrap();
                let s = args.pop().unwrap();
                let f = Expr {
                    line,
                    kind: ExprKind::MethodCall(Box::new(s), "find".into(), vec![n]),
                };
                Expr {
                    line,
                    kind: ExprKind::Bin(BinOp::Add, Box::new(f), Box::new(int1())),
                }
            }
            // sub(s, i, j) -> s[i-1 : j] (Lua's j is inclusive)
            "sub" => {
                arity(3, &args)?;
                let j = args.pop().unwrap();
                let i = args.pop().unwrap();
                let s = args.pop().unwrap();
                Expr {
                    line,
                    kind: ExprKind::Slice(Box::new(s), Box::new(minus1(i)), Box::new(j)),
                }
            }
            // byte(s, i) -> ord(s[i-1])
            "byte" => {
                arity(2, &args)?;
                let i = args.pop().unwrap();
                let s = args.pop().unwrap();
                let idx = Expr {
                    line,
                    kind: ExprKind::Index(Box::new(s), Box::new(minus1(i))),
                };
                Expr {
                    line,
                    kind: ExprKind::Call("ord".into(), vec![idx]),
                }
            }
            "char" => {
                arity(1, &args)?;
                Expr {
                    line,
                    kind: ExprKind::Call("chr".into(), args),
                }
            }
            "tostring" => {
                arity(1, &args)?;
                Expr {
                    line,
                    kind: ExprKind::Call("str".into(), args),
                }
            }
            "tonumber" => {
                arity(1, &args)?;
                Expr {
                    line,
                    kind: ExprKind::Call("int".into(), args),
                }
            }
            // insert(t, v) -> t.append(v)
            "insert" => {
                arity(2, &args)?;
                let v = args.pop().unwrap();
                let t = args.pop().unwrap();
                Expr {
                    line,
                    kind: ExprKind::MethodCall(Box::new(t), "append".into(), vec![v]),
                }
            }
            // newlist() -> []
            "newlist" => {
                arity(0, &args)?;
                Expr {
                    line,
                    kind: ExprKind::List(vec![]),
                }
            }
            _ => Expr {
                line,
                kind: ExprKind::Call(name.to_string(), args),
            },
        })
    }

    fn atom(&mut self) -> Result<Expr, ParseError> {
        let line = self.line();
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(Expr {
                    line,
                    kind: ExprKind::Int(v),
                })
            }
            Tok::Str(s) => {
                self.bump();
                Ok(Expr {
                    line,
                    kind: ExprKind::Str(s),
                })
            }
            Tok::Ident(s) if s == "true" => {
                self.bump();
                Ok(Expr {
                    line,
                    kind: ExprKind::True,
                })
            }
            Tok::Ident(s) if s == "false" => {
                self.bump();
                Ok(Expr {
                    line,
                    kind: ExprKind::False,
                })
            }
            Tok::Ident(s) if s == "nil" => {
                self.bump();
                Ok(Expr {
                    line,
                    kind: ExprKind::None,
                })
            }
            Tok::Ident(s) if !KEYWORDS.contains(&s.as_str()) => {
                self.bump();
                Ok(Expr {
                    line,
                    kind: ExprKind::Name(s),
                })
            }
            Tok::Punct("(") => {
                self.bump();
                let e = self.expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            Tok::Punct("{") => {
                self.bump();
                self.expect_punct("}")?;
                Ok(Expr {
                    line,
                    kind: ExprKind::Dict(vec![]),
                })
            }
            other => self.err(format!("unexpected {other}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chef_minipy::ast::StmtKind;

    #[test]
    fn parses_function() {
        let m = parse("function add(a, b)\n  return a + b\nend\n").unwrap();
        assert_eq!(m.funcs[0].params, vec!["a", "b"]);
    }

    #[test]
    fn if_elseif_else() {
        let src = "function f(x)\n  if x == 1 then return 1 elseif x == 2 then return 2 else return 3 end\nend\n";
        let m = parse(src).unwrap();
        match &m.funcs[0].body[0].kind {
            StmtKind::If(arms, els) => {
                assert_eq!(arms.len(), 2);
                assert_eq!(els.len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn numeric_for_desugars() {
        let src = "function f(n)\n  local acc = 0\n  for i = 1, n do acc = acc + i end\n  return acc\nend\n";
        let m = parse(src).unwrap();
        // Desugared into an always-true If wrapping init + while.
        assert!(matches!(m.funcs[0].body[1].kind, StmtKind::If(..)));
    }

    #[test]
    fn error_becomes_raise() {
        let src = "function f()\n  error(\"boom\")\nend\n";
        let m = parse(src).unwrap();
        match &m.funcs[0].body[0].kind {
            StmtKind::Raise(name, _) => assert_eq!(name, LUA_ERROR),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn stdlib_lowering() {
        let src = "function f(s)\n  local p = find(s, \"@\")\n  local t = sub(s, 1, 2)\n  local b = byte(s, 1)\n  return p\nend\n";
        assert!(parse(src).is_ok());
    }

    #[test]
    fn length_operator_lowers_to_len() {
        let src = "function f(s)\n  return #s\nend\n";
        let m = parse(src).unwrap();
        match &m.funcs[0].body[0].kind {
            StmtKind::Return(Some(e)) => {
                assert!(matches!(&e.kind, chef_minipy::ast::ExprKind::Call(n, _) if n == "len"))
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn concat_lowers_to_add() {
        let src = "function f(a, b)\n  return a .. b\nend\n";
        assert!(parse(src).is_ok());
    }
}
